// Tests for the per-query EXPLAIN layer (obs/explain.h, DESIGN.md §5.13):
// tree completeness (every plan node attributed), the planner's
// estimate-vs-measured cost audit, cache probe outcomes, structural-JSON
// determinism across identical runs, exporter determinism (JSONL and Chrome
// trace-event), the trace reader-quiescence counter, the plan-text grammar,
// and the service cache occupancy gauges.

#include "obs/explain.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "service/plan_text.h"
#include "service/sharded_index.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

using obs::ExplainNode;
using obs::QueryExplain;

const Codec& Planner() { return *FindCodec("Planner"); }

// Mirrors the planner tests' mixed-shape workload: the per-list codec choice
// is genuinely mixed (dense lists → bitmap, sparse lists → list codec), so
// per-pair decisions in the explain tree cross codec families.
std::vector<std::vector<uint32_t>> MixedLists(uint64_t domain, uint64_t seed) {
  std::vector<std::vector<uint32_t>> lists;
  lists.push_back(GenerateUniform(domain / 3, domain, seed));
  lists.push_back(GenerateUniform(200, domain, seed + 1));
  lists.push_back(GenerateMarkov(domain / 8, domain, 64.0, seed + 2));
  lists.push_back(GenerateZipf(2000, domain, 1.0, seed + 3));
  return lists;
}

size_t TotalNodes(const ExplainNode& n) {
  size_t total = 1;
  for (const ExplainNode& c : n.children) total += TotalNodes(c);
  return total;
}

size_t CountLeavesInPlan(const QueryPlan& plan) {
  if (plan.op == QueryPlan::Op::kLeaf) return 1;
  size_t total = 0;
  for (const QueryPlan& c : plan.children) total += CountLeavesInPlan(c);
  return total;
}

size_t CountOperatorsInPlan(const QueryPlan& plan) {
  if (plan.op == QueryPlan::Op::kLeaf) return 0;
  size_t total = 1;
  for (const QueryPlan& c : plan.children) total += CountOperatorsInPlan(c);
  return total;
}

// ------------------------------------------------------------- plan text

TEST(PlanTextTest, RoundTripsLeavesAndNestedOperators) {
  for (const char* text :
       {"7", "&(0,1)", "|(2,3,4)", "&(|(0,1),2)", "|(&(0,2),1,&(3,4,5))"}) {
    QueryPlan plan;
    ASSERT_TRUE(ParsePlanText(text, &plan).ok()) << text;
    EXPECT_EQ(PlanToText(plan), text);
  }
}

TEST(PlanTextTest, AcceptsWhitespaceBetweenTokens) {
  QueryPlan plan;
  ASSERT_TRUE(ParsePlanText(" &( 0 , | (1, 2) ) ", &plan).ok());
  EXPECT_EQ(PlanToText(plan), "&(0,|(1,2))");
}

TEST(PlanTextTest, RejectsMalformedInput) {
  QueryPlan plan;
  for (const char* text :
       {"", "&", "&(", "&()", "&(0,", "&(0))", "0 1", "x", "&(0,,1)",
        "99999999999999999999"}) {
    EXPECT_FALSE(ParsePlanText(text, &plan).ok()) << text;
  }
}

TEST(PlanTextTest, PreservesWrittenOrderWithoutCanonicalizing) {
  QueryPlan plan;
  ASSERT_TRUE(ParsePlanText("&(2,0,1)", &plan).ok());
  ASSERT_EQ(plan.children.size(), 3u);
  EXPECT_EQ(plan.children[0].leaf, 2u);
  EXPECT_EQ(plan.children[1].leaf, 0u);
  EXPECT_EQ(plan.children[2].leaf, 1u);
}

// --------------------------------------------------------- service explain

struct ServiceRig {
  std::vector<std::vector<uint32_t>> lists;
  ShardedIndex index;
  ThreadPool pool;
  IndexService service;

  ServiceRig(uint64_t domain, uint64_t seed, size_t shards, bool cache)
      : lists(MixedLists(domain, seed)),
        index(ShardedIndex::Build(Planner(), lists, domain, shards)),
        pool(2),
        service(&index, &pool,
                [cache] {
                  IndexServiceOptions o;
                  o.cache_enabled = cache;
                  return o;
                }()) {}
};

TEST(ExplainQueryTest, TreeCoversEveryPlanNodeOnEveryShard) {
  ServiceRig rig(1 << 14, TestSeed(0xe101), /*shards=*/3, /*cache=*/false);
  const QueryPlan plan = QueryPlan::And(
      {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}),
       QueryPlan::Leaf(2), QueryPlan::Leaf(3)});

  QueryExplain explain;
  std::vector<uint32_t> rows;
  ASSERT_TRUE(rig.service.Query(plan, &rows, &explain).ok());
  ASSERT_TRUE(explain.ok);

  EXPECT_EQ(explain.root.name, "service.query");
  ASSERT_NE(explain.root.FindAttr("rows"), nullptr);
  EXPECT_EQ(explain.root.FindAttr("rows")->u, rows.size());

  // Fan-out: one shard node per shard, each carrying its ordinal.
  const ExplainNode* fanout = explain.root.Find("service.fanout");
  ASSERT_NE(fanout, nullptr);
  ASSERT_EQ(fanout->children.size(), 3u);
  for (size_t s = 0; s < fanout->children.size(); ++s) {
    const ExplainNode& shard = fanout->children[s];
    EXPECT_EQ(shard.name, "service.shard");
    EXPECT_EQ(shard.ordinal, s);

    // Complete attribution: every plan leaf and every operator node of the
    // plan appears in this shard's subtree, plus one "list" node per
    // distinct referenced list.
    EXPECT_EQ(shard.CountNodes("plan.leaf"), CountLeavesInPlan(plan));
    EXPECT_EQ(shard.CountNodes("plan.and") + shard.CountNodes("plan.or"),
              CountOperatorsInPlan(plan));
    EXPECT_EQ(shard.CountNodes("list"), 4u);

    // Each list node names its serving codec and family.
    for (const ExplainNode& child : shard.children) {
      if (child.name != "list") continue;
      ASSERT_NE(child.FindAttr("codec"), nullptr);
      const ExplainNode* list_node = &child;
      const std::string family = list_node->FindAttr("family")->s;
      EXPECT_TRUE(family == "bitmap" || family == "list") << family;
    }
  }

  EXPECT_NE(explain.root.Find("service.stitch"), nullptr);
  EXPECT_NE(explain.root.Find("cache.probe"), nullptr);
}

TEST(ExplainQueryTest, MixedCodecPairCarriesEstimateAndMeasuredCost) {
  ServiceRig rig(1 << 14, TestSeed(0xe102), /*shards=*/2, /*cache=*/false);
  // Leaves 0 (dense → bitmap) and 1 (sparse → list codec) intersect through
  // the planner's strategy chooser.
  const QueryPlan plan =
      QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(1)});

  QueryExplain explain;
  std::vector<uint32_t> rows;
  ASSERT_TRUE(rig.service.Query(plan, &rows, &explain).ok());
  ASSERT_TRUE(explain.ok);

  const ExplainNode* pair = explain.root.Find("planner.pair");
  ASSERT_NE(pair, nullptr);
  ASSERT_NE(pair->FindAttr("strategy"), nullptr);
  ASSERT_NE(pair->FindAttr("codec_a"), nullptr);
  ASSERT_NE(pair->FindAttr("codec_b"), nullptr);
  // The pair genuinely crosses codec families in this workload.
  EXPECT_NE(pair->FindAttr("codec_a")->s, pair->FindAttr("codec_b")->s);
  // Estimated cost (model) and measured cost (wall) are both attributed.
  ASSERT_NE(pair->FindAttr("est_ns"), nullptr);
  EXPECT_GT(pair->FindAttr("est_ns")->d, 0.0);
  ASSERT_NE(pair->FindAttr("measured_ns"), nullptr);
  // And the estimate-vs-actual residual counters accumulate when metrics
  // are enabled (the audit feeds both surfaces from the same site).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  reg.SetEnabled(true);
  ASSERT_TRUE(rig.service.Query(plan, &rows).ok());
  reg.SetEnabled(false);
  uint64_t residual_count = 0;
  for (const char* strategy : {"compressed", "merge", "gallop"}) {
    residual_count += reg.CounterValue(
        std::string("planner.cost.residual.") + strategy + ".count");
  }
  EXPECT_GT(residual_count, 0u);
  reg.Reset();
}

TEST(ExplainQueryTest, CacheProbeOutcomeProgressesMissToHit) {
  ServiceRig rig(1 << 13, TestSeed(0xe103), /*shards=*/2, /*cache=*/true);
  const QueryPlan plan =
      QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(2)});

  std::vector<uint32_t> rows;
  QueryExplain first, last;
  ASSERT_TRUE(rig.service.Query(plan, &rows, &first).ok());
  ASSERT_TRUE(rig.service.Query(plan, &rows, &last).ok());
  ASSERT_TRUE(rig.service.Query(plan, &rows, &last).ok());

  const ExplainNode* probe1 = first.root.Find("cache.probe");
  ASSERT_NE(probe1, nullptr);
  EXPECT_EQ(probe1->FindAttr("outcome")->s, "miss");
  // The admission gate stores on the second miss; run 3 hits.
  const ExplainNode* probe3 = last.root.Find("cache.probe");
  ASSERT_NE(probe3, nullptr);
  EXPECT_EQ(probe3->FindAttr("outcome")->s, "hit");
  // A hit short-circuits evaluation: no fan-out below the root.
  EXPECT_EQ(last.root.Find("service.fanout"), nullptr);
  EXPECT_EQ(probe3->FindAttr("rows")->u, rows.size());
}

TEST(ExplainQueryTest, StructuralJsonIsDeterministicAcrossIdenticalRuns) {
  const QueryPlan plan = QueryPlan::And(
      {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(3)}),
       QueryPlan::Leaf(2)});
  std::string first_json;
  for (int run = 0; run < 2; ++run) {
    // A fresh rig per run: same seeds, same build, same (cold) cache state.
    ServiceRig rig(1 << 13, TestSeed(0xe104), /*shards=*/2, /*cache=*/true);
    QueryExplain explain;
    std::vector<uint32_t> rows;
    ASSERT_TRUE(rig.service.Query(plan, &rows, &explain).ok());
    ASSERT_TRUE(explain.ok);
    const std::string structural = explain.ToJson(/*include_timings=*/false);
    // Timing-stripped form: no wall-clock fields anywhere.
    EXPECT_EQ(structural.find("_ns"), std::string::npos);
    if (run == 0) {
      first_json = structural;
      // The full form does carry timings.
      EXPECT_NE(explain.ToJson(true).find("dur_ns"), std::string::npos);
    } else {
      EXPECT_EQ(structural, first_json);  // byte-identical
    }
  }
  EXPECT_FALSE(first_json.empty());
}

TEST(ExplainQueryTest, NullExplainPointerMatchesPlainQuery) {
  ServiceRig rig(1 << 13, TestSeed(0xe105), /*shards=*/2, /*cache=*/false);
  const QueryPlan plan =
      QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(1)});
  std::vector<uint32_t> plain, with_null, with_explain;
  ASSERT_TRUE(rig.service.Query(plan, &plain).ok());
  ASSERT_TRUE(rig.service.Query(plan, &with_null, nullptr).ok());
  QueryExplain explain;
  ASSERT_TRUE(rig.service.Query(plan, &with_explain, &explain).ok());
  EXPECT_EQ(with_null, plain);
  EXPECT_EQ(with_explain, plain);  // capture never changes results
  EXPECT_GT(TotalNodes(explain.root), 1u);
}

TEST(ExplainQueryTest, InvalidPlanStillReturnsACaptureWithTheError) {
  ServiceRig rig(1 << 12, TestSeed(0xe106), /*shards=*/2, /*cache=*/false);
  const QueryPlan plan = QueryPlan::Leaf(99);  // out of range
  QueryExplain explain;
  std::vector<uint32_t> rows;
  EXPECT_FALSE(rig.service.Query(plan, &rows, &explain).ok());
  EXPECT_TRUE(rows.empty());
}

// ------------------------------------------------------------- exporters

TEST(ExplainExportTest, ChromeTraceExportIsAPureFunctionOfTheSnapshot) {
  obs::SetTraceSampling(0);
  obs::ClearSpans();
  obs::SetTraceSeed(42);
  obs::SetTraceSampling(1);
  {
    TRACE_SPAN("export_root");
    for (int i = 0; i < 8; ++i) {
      TRACE_SPAN("export_child");
    }
  }
  obs::SetTraceSampling(0);
  const auto spans = obs::SnapshotSpans();
  ASSERT_GE(spans.size(), 9u);

  const std::string a = obs::ExportChromeTrace(spans);
  const std::string b = obs::ExportChromeTrace(spans);
  EXPECT_EQ(a, b);  // byte-identical for a fixed snapshot
  // Structure: trace-event container with complete events and the span ids
  // threaded through args for tooling.
  EXPECT_NE(a.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(a.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(a.find("\"name\":\"export_root\""), std::string::npos);
  EXPECT_NE(a.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(a.find("\"parent_id\""), std::string::npos);
  obs::ClearSpans();
}

TEST(ExplainExportTest, JsonlAndPrometheusExportGauges) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  reg.SetEnabled(true);
  reg.SetGauge("service.cache.bytes", 4096);
  reg.SetGauge("service.cache.entries", 3);
  reg.SetGauge("service.cache.evictions", 1);
  reg.RecordOpLatency("Planner", obs::OpKind::kServiceQuery, 1000);
  reg.SetEnabled(false);

  const std::string jsonl = reg.ExportJsonl("explain_test");
  EXPECT_NE(jsonl.find("{\"metric\":\"gauge\",\"name\":"
                       "\"service.cache.bytes\",\"value\":4096}"),
            std::string::npos);
  EXPECT_EQ(jsonl, reg.ExportJsonl("explain_test"));  // deterministic

  const std::string prom = reg.ExportPrometheus();
  EXPECT_NE(prom.find("# TYPE intcomp_gauge gauge"), std::string::npos);
  EXPECT_NE(prom.find("intcomp_gauge{name=\"service.cache.entries\"} 3"),
            std::string::npos);
  reg.Reset();
}

TEST(ExplainExportTest, ServiceQueriesPublishCacheOccupancyGauges) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  reg.SetEnabled(true);
  {
    ServiceRig rig(1 << 13, TestSeed(0xe107), /*shards=*/2, /*cache=*/true);
    const QueryPlan plan =
        QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(2)});
    std::vector<uint32_t> rows;
    // Two misses: the admission gate stores on the second one.
    ASSERT_TRUE(rig.service.Query(plan, &rows).ok());
    ASSERT_TRUE(rig.service.Query(plan, &rows).ok());
  }
  reg.SetEnabled(false);
  EXPECT_GE(reg.GaugeValue("service.cache.entries"), 1u);
  EXPECT_GT(reg.GaugeValue("service.cache.bytes"), 0u);
  reg.Reset();
}

// ------------------------------------------------------------ quiescence

TEST(TraceQuiescenceTest, ActiveRecorderCountTracksOpenSpans) {
  obs::SetTraceSampling(0);
  obs::ClearSpans();
  obs::SetTraceSeed(42);
  EXPECT_EQ(obs::ActiveRecorderCount(), 0u);

  obs::SetTraceSampling(1);
  std::mutex mu;
  std::condition_variable cv;
  bool span_open = false, release = false;
  std::thread holder([&] {
    TRACE_SPAN("held_open");
    {
      std::unique_lock<std::mutex> lock(mu);
      span_open = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return span_open; });
  }
  // The holder thread is inside an open recording span: a snapshot now
  // would race its End(); the predicate the debug assertion checks.
  EXPECT_GE(obs::ActiveRecorderCount(), 1u);
  {
    std::unique_lock<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  holder.join();
  obs::SetTraceSampling(0);
  EXPECT_EQ(obs::ActiveRecorderCount(), 0u);  // quiescent: reads are safe
  EXPECT_FALSE(obs::SnapshotSpans().empty());
  obs::ClearSpans();
}

// ------------------------------------------------------- explain plumbing

TEST(ExplainScopeTest, InactiveWithoutACaptureAndAttrsAreDropped) {
  ASSERT_FALSE(obs::ExplainActive());
  obs::ExplainScope scope("no_capture");
  EXPECT_FALSE(scope.active());
  scope.AddUint("ignored", 1);  // must be a no-op, not a crash
}

TEST(ExplainScopeTest, SiblingsSortByOrdinalRegardlessOfRecordOrder) {
  obs::ExplainSink sink;
  {
    obs::ScopedExplainCapture capture(&sink);
    obs::ExplainScope root("root");
    {
      obs::ExplainScope late("child", /*ordinal=*/2);
    }
    {
      obs::ExplainScope early("child", /*ordinal=*/0);
    }
    {
      obs::ExplainScope mid("child", /*ordinal=*/1);
    }
  }
  const QueryExplain explain = sink.Build();
  ASSERT_TRUE(explain.ok);
  ASSERT_EQ(explain.root.children.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(explain.root.children[i].ordinal, i);
  }
}

TEST(ExplainScopeTest, ThreadPoolWorkersAttachUnderTheSubmittersScope) {
  obs::ExplainSink sink;
  {
    obs::ScopedExplainCapture capture(&sink);
    obs::ExplainScope root("root");
    ThreadPool pool(2);
    for (uint64_t i = 0; i < 4; ++i) {
      pool.Submit([i](size_t) {
        obs::ExplainScope scope("worker", /*ordinal=*/i);
        scope.AddUint("task", i);
      });
    }
    pool.Wait();
  }
  const QueryExplain explain = sink.Build();
  ASSERT_TRUE(explain.ok);
  EXPECT_EQ(explain.root.name, "root");
  ASSERT_EQ(explain.root.CountNodes("worker"), 4u);
  for (size_t i = 0; i < explain.root.children.size(); ++i) {
    EXPECT_EQ(explain.root.children[i].ordinal, i);
  }
}

}  // namespace
}  // namespace intcomp
