// Deterministic corruption operators for serialized codec images.
//
// Each operator takes a genuine image and produces a hostile variant that a
// decoder must survive: truncations model torn reads, bit flips model media
// corruption, length inflation models attacker-controlled size fields, and
// splices model images whose halves come from different (or differently
// versioned) writers. All randomness flows through the caller's Prng, so a
// failing fuzz iteration reproduces from its seed alone.

#ifndef INTCOMP_TESTS_FAULT_INJECT_H_
#define INTCOMP_TESTS_FAULT_INJECT_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/prng.h"

namespace intcomp {

// The first `n` bytes of `image` (n may be anything up to image.size()).
inline std::vector<uint8_t> TruncateAt(const std::vector<uint8_t>& image,
                                       size_t n) {
  return std::vector<uint8_t>(image.begin(),
                              image.begin() + std::min(n, image.size()));
}

// Flips `flips` random bits in place.
inline void FlipBits(std::vector<uint8_t>* image, size_t flips, Prng* rng) {
  if (image->empty()) return;
  for (size_t i = 0; i < flips; ++i) {
    const size_t bit = rng->NextBounded(image->size() * 8);
    (*image)[bit / 8] ^= uint8_t{1} << (bit % 8);
  }
}

// Overwrites a random aligned-size window with an attacker-chosen "huge
// length" pattern: all-ones, a value just past the buffer size, or a value
// whose byte count overflows 64-bit arithmetic (2^61 8-byte elements).
inline void InflateLength(std::vector<uint8_t>* image, Prng* rng) {
  if (image->size() < 4) return;
  const size_t off = rng->NextBounded(image->size() - 3);
  const uint64_t patterns[] = {
      ~uint64_t{0},
      uint64_t{0xffffffff},
      static_cast<uint64_t>(image->size()) + 1 + rng->NextBounded(1024),
      uint64_t{1} << 61,  // * 8 bytes/element wraps a 64-bit size_t
  };
  const uint64_t v = patterns[rng->NextBounded(4)];
  const size_t n = std::min<size_t>(8, image->size() - off);
  std::memcpy(image->data() + off, &v, n);
}

// Head of `a` glued to the tail of `b` at independent random cuts — the
// shape of an image whose inner payload was swapped out from under its
// header (or that mixes two codecs' framings).
inline std::vector<uint8_t> Splice(const std::vector<uint8_t>& a,
                                   const std::vector<uint8_t>& b, Prng* rng) {
  const size_t cut_a = a.empty() ? 0 : rng->NextBounded(a.size() + 1);
  const size_t cut_b = b.empty() ? 0 : rng->NextBounded(b.size() + 1);
  std::vector<uint8_t> out(a.begin(), a.begin() + cut_a);
  out.insert(out.end(), b.begin() + cut_b, b.end());
  return out;
}

// Replaces a random window with uniformly random bytes.
inline void Scramble(std::vector<uint8_t>* image, Prng* rng) {
  if (image->empty()) return;
  const size_t off = rng->NextBounded(image->size());
  const size_t len =
      1 + rng->NextBounded(std::min<size_t>(image->size() - off, 16));
  for (size_t i = 0; i < len; ++i) {
    (*image)[off + i] = static_cast<uint8_t>(rng->Next());
  }
}

}  // namespace intcomp

#endif  // INTCOMP_TESTS_FAULT_INJECT_H_
