// Tests for the extension features: the Hybrid codec (paper lesson 1),
// top-k retrieval (App. A.1), set difference, and the k-way union path.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybrid.h"
#include "core/registry.h"
#include "core/set_ops.h"
#include "core/topk.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

const Codec& Hybrid() { return *FindCodec("Hybrid"); }

TEST(HybridTest, IsRegisteredAsExtension) {
  ASSERT_EQ(ExtensionCodecs().size(), 3u);
  EXPECT_EQ(ExtensionCodecs()[0]->Name(), "Hybrid");
  EXPECT_EQ(ExtensionCodecs()[1]->Name(), "EF");
  EXPECT_EQ(ExtensionCodecs()[2]->Name(), "Planner");
  EXPECT_EQ(FindCodec("Hybrid"), ExtensionCodecs()[0]);
  EXPECT_EQ(FindCodec("EF"), ExtensionCodecs()[1]);
  EXPECT_EQ(FindCodec("Planner"), ExtensionCodecs()[2]);
  // Extensions must not leak into the paper's 24-method list.
  for (const Codec* c : AllCodecs()) {
    EXPECT_NE(c->Name(), "Hybrid");
    EXPECT_NE(c->Name(), "EF");
    EXPECT_NE(c->Name(), "Planner");
  }
  // The shared roster is exactly paper methods + extensions, in order.
  auto roster = AllCodecsWithExtensions();
  ASSERT_EQ(roster.size(), AllCodecs().size() + ExtensionCodecs().size());
  for (size_t i = 0; i < AllCodecs().size(); ++i) {
    EXPECT_EQ(roster[i], AllCodecs()[i]);
  }
  for (size_t i = 0; i < ExtensionCodecs().size(); ++i) {
    EXPECT_EQ(roster[AllCodecs().size() + i], ExtensionCodecs()[i]);
  }
}

TEST(HybridTest, EffectiveFamilyTracksTheChosenSide) {
  // Regression: Family() is the static registry slot (kBitmap), but a
  // list-backed hybrid set used to be misclassified by per-set consumers
  // that trusted it. EffectiveFamily must report the side the set landed
  // on, and SetCodecName the inner codec's name.
  auto dense = RandomSortedList(300000, 1 << 20, 91);   // density ~0.29
  auto sparse = RandomSortedList(1000, 1 << 20, 92);    // density ~0.001
  auto sd = Hybrid().Encode(dense, 1 << 20);
  auto ss = Hybrid().Encode(sparse, 1 << 20);
  ASSERT_TRUE(static_cast<const HybridCodec::Set&>(*sd).is_bitmap);
  ASSERT_FALSE(static_cast<const HybridCodec::Set&>(*ss).is_bitmap);
  EXPECT_EQ(Hybrid().Family(), CodecFamily::kBitmap);
  EXPECT_EQ(Hybrid().EffectiveFamily(*sd), CodecFamily::kBitmap);
  EXPECT_EQ(Hybrid().EffectiveFamily(*ss), CodecFamily::kInvertedList);
  EXPECT_EQ(Hybrid().SetCodecName(*sd), "Roaring");
  EXPECT_EQ(Hybrid().SetCodecName(*ss), "SIMDPforDelta*");
  // Fixed-representation codecs answer with their static identity.
  const Codec& roaring = *FindCodec("Roaring");
  auto r = roaring.Encode(sparse, 1 << 20);
  EXPECT_EQ(roaring.EffectiveFamily(*r), roaring.Family());
  EXPECT_EQ(roaring.SetCodecName(*r), roaring.Name());
}

TEST(EfTest, PartitioningExploitsClustering) {
  // Partition-scale clustering (dense runs separated by large gaps) is
  // exactly what PEF's per-partition containers exploit (§3.9): aligned
  // runs collapse to zero-byte implicit containers, while plain EF must
  // spend ~log2(U/n) low bits on every element.
  std::vector<uint32_t> runs;
  for (uint32_t r = 0; r < 300; ++r) {
    for (uint32_t i = 0; i < 128; ++i) runs.push_back(r * 100000 + i);
  }
  const Codec& ef = *FindCodec("EF");
  const Codec& pef = *FindCodec("PEF");
  auto se = ef.Encode(runs, 1u << 25);
  auto sp = pef.Encode(runs, 1u << 25);
  EXPECT_LT(sp->SizeInBytes() * 4, se->SizeInBytes());
  std::vector<uint32_t> de, dp;
  ef.Decode(*se, &de);
  pef.Decode(*sp, &dp);
  EXPECT_EQ(de, runs);
  EXPECT_EQ(dp, runs);
  // On unclustered markov data, the two are within metadata noise of each
  // other.
  auto clustered = GenerateMarkov(40000, 1 << 22, 8.0, 77);
  auto se2 = ef.Encode(clustered, 1 << 22);
  auto sp2 = pef.Encode(clustered, 1 << 22);
  EXPECT_LT(static_cast<double>(sp2->SizeInBytes()),
            1.25 * static_cast<double>(se2->SizeInBytes()));
}

TEST(HybridTest, PicksBitmapForDenseAndListForSparse) {
  auto dense = RandomSortedList(300000, 1 << 20, 1);    // density ~0.29
  auto sparse = RandomSortedList(1000, 1 << 20, 2);     // density ~0.001
  auto sd = Hybrid().Encode(dense, 1 << 20);
  auto ss = Hybrid().Encode(sparse, 1 << 20);
  EXPECT_TRUE(static_cast<const HybridCodec::Set&>(*sd).is_bitmap);
  EXPECT_FALSE(static_cast<const HybridCodec::Set&>(*ss).is_bitmap);
}

TEST(HybridTest, UnknownDomainTreatsSparseWideListAsList) {
  // Regression: domain == 0 means "unknown", not "tiny". A 10k-element list
  // scattered over nearly the full 2^32 range (density ~2e-6) used to divide
  // by the declared domain of 0, classify as "dense", and inflate into a
  // ~500MB bitmap. It must pick the list family, and the serialized image
  // must carry the list tag in byte 0 so readers agree.
  auto sparse = RandomSortedList(10000, uint64_t{1} << 32, 21);
  auto s = Hybrid().Encode(sparse, /*domain=*/0);
  EXPECT_FALSE(static_cast<const HybridCodec::Set&>(*s).is_bitmap);
  std::vector<uint8_t> image;
  Hybrid().Serialize(*s, &image);
  ASSERT_FALSE(image.empty());
  EXPECT_EQ(image[0], 0u);  // 0 = list family, 1 = bitmap family
  // And the round trip must still behave.
  auto restored = Hybrid().Deserialize(image.data(), image.size());
  ASSERT_NE(restored, nullptr);
  std::vector<uint32_t> out;
  Hybrid().Decode(*restored, &out);
  EXPECT_EQ(out, sparse);

  // A genuinely dense list must still become a bitmap when the caller
  // passes a loose or unknown domain: the value range decides.
  std::vector<uint32_t> dense(200000);
  for (uint32_t i = 0; i < dense.size(); ++i) dense[i] = 2 * i;
  auto d = Hybrid().Encode(dense, /*domain=*/0);
  EXPECT_TRUE(static_cast<const HybridCodec::Set&>(*d).is_bitmap);
}

TEST(HybridTest, MixedFamilyOpsAreCorrect) {
  auto dense = RandomSortedList(300000, 1 << 20, 3);
  auto sparse = RandomSortedList(1000, 1 << 20, 4);
  auto sd = Hybrid().Encode(dense, 1 << 20);
  auto ss = Hybrid().Encode(sparse, 1 << 20);
  ASSERT_NE(static_cast<const HybridCodec::Set&>(*sd).is_bitmap,
            static_cast<const HybridCodec::Set&>(*ss).is_bitmap);
  std::vector<uint32_t> out;
  Hybrid().Intersect(*sd, *ss, &out);
  EXPECT_EQ(out, RefIntersect(dense, sparse));
  Hybrid().Intersect(*ss, *sd, &out);
  EXPECT_EQ(out, RefIntersect(dense, sparse));
  Hybrid().Union(*sd, *ss, &out);
  EXPECT_EQ(out, RefUnion(dense, sparse));
}

TEST(HybridTest, SpaceTracksTheBetterFamily) {
  // On a dense list, Hybrid should be close to Roaring; on a sparse one,
  // close to SIMDPforDelta* — never dramatically worse than both.
  const Codec& roaring = *FindCodec("Roaring");
  const Codec& simdpfd = *FindCodec("SIMDPforDelta*");
  for (uint64_t seed : {7u, 8u}) {
    auto dense = RandomSortedList(300000, 1 << 20, seed);
    auto h = Hybrid().Encode(dense, 1 << 20);
    auto r = roaring.Encode(dense, 1 << 20);
    EXPECT_LE(h->SizeInBytes(), r->SizeInBytes() + 64);
    auto sparse = RandomSortedList(2000, 1 << 24, seed + 10);
    auto hs = Hybrid().Encode(sparse, 1 << 24);
    auto ls = simdpfd.Encode(sparse, 1 << 24);
    EXPECT_LE(hs->SizeInBytes(), ls->SizeInBytes() + 64);
  }
}

TEST(TopKTest, ReturnsHighestScoresInOrder) {
  const Codec& codec = *FindCodec("Roaring");
  auto core = RandomSortedList(500, 1 << 16, 20);
  std::vector<std::vector<uint32_t>> lists;
  for (uint64_t s = 0; s < 3; ++s) {
    auto l = RandomSortedList(5000, 1 << 16, 21 + s);
    l.insert(l.end(), core.begin(), core.end());
    std::sort(l.begin(), l.end());
    l.erase(std::unique(l.begin(), l.end()), l.end());
    lists.push_back(std::move(l));
  }
  std::vector<std::unique_ptr<CompressedSet>> sets;
  std::vector<const CompressedSet*> ptrs;
  for (const auto& l : lists) {
    sets.push_back(codec.Encode(l, 1 << 16));
    ptrs.push_back(sets.back().get());
  }
  auto scorer = [](uint32_t doc) { return std::fmod(doc * 0.61803398875, 1.0); };

  auto top = TopK(codec, ptrs, 10, scorer);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }

  // Cross-check against brute force over the reference intersection.
  auto candidates = RefIntersect(RefIntersect(lists[0], lists[1]), lists[2]);
  std::vector<ScoredDoc> brute;
  for (uint32_t d : candidates) brute.push_back({d, scorer(d)});
  std::sort(brute.begin(), brute.end(), [](const auto& a, const auto& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].doc, brute[i].doc) << i;
    EXPECT_DOUBLE_EQ(top[i].score, brute[i].score) << i;
  }
}

TEST(TopKTest, KLargerThanCandidates) {
  const Codec& codec = *FindCodec("VB");
  std::vector<uint32_t> a = {1, 5, 9};
  std::vector<uint32_t> b = {5, 9, 12};
  auto sa = codec.Encode(a, 100);
  auto sb = codec.Encode(b, 100);
  const CompressedSet* ptrs[] = {sa.get(), sb.get()};
  auto top = TopK(codec, ptrs, 10, [](uint32_t d) { return double(d); });
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].doc, 9u);
  EXPECT_EQ(top[1].doc, 5u);
}

TEST(TopKTest, ZeroK) {
  const Codec& codec = *FindCodec("VB");
  std::vector<uint32_t> a = {1, 2, 3};
  auto sa = codec.Encode(a, 100);
  const CompressedSet* ptrs[] = {sa.get()};
  EXPECT_TRUE(TopK(codec, ptrs, 0, [](uint32_t) { return 1.0; }).empty());
}

class DifferenceTest : public ::testing::TestWithParam<const Codec*> {};

TEST_P(DifferenceTest, MatchesReference) {
  const Codec& codec = *GetParam();
  auto a = RandomSortedList(5000, 1 << 18, 30);
  auto b = RandomSortedList(20000, 1 << 18, 31);
  auto sa = codec.Encode(a, 1 << 18);
  auto sb = codec.Encode(b, 1 << 18);
  std::vector<uint32_t> expected;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(expected));
  std::vector<uint32_t> got;
  DifferenceSets(codec, *sa, *sb, &got);
  EXPECT_EQ(got, expected);
  // a \ a is empty; a \ empty is a.
  DifferenceSets(codec, *sa, *sa, &got);
  EXPECT_TRUE(got.empty());
  auto empty = codec.Encode({}, 1 << 18);
  DifferenceSets(codec, *sa, *empty, &got);
  EXPECT_EQ(got, a);
}

INSTANTIATE_TEST_SUITE_P(SampleCodecs, DifferenceTest,
                         ::testing::Values(FindCodec("Roaring"),
                                           FindCodec("WAH"),
                                           FindCodec("SIMDBP128*"),
                                           FindCodec("PEF"),
                                           FindCodec("Hybrid")),
                         [](const auto& info) {
                           std::string n(info.param->Name());
                           for (char& c : n) {
                             if (c == '*') c = 'S';
                           }
                           return n;
                         });

TEST(DifferenceListsTest, Basics) {
  std::vector<uint32_t> a = {1, 2, 3, 7, 9};
  std::vector<uint32_t> b = {2, 7, 10};
  std::vector<uint32_t> out;
  DifferenceLists(a, b, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 3, 9}));
  DifferenceLists(b, a, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{10}));
  DifferenceLists({}, a, &out);
  EXPECT_TRUE(out.empty());
}

TEST(KWayUnionTest, ManyListsMatchReference) {
  const Codec& codec = *FindCodec("SIMDBP128*");
  std::vector<std::vector<uint32_t>> lists;
  std::vector<uint32_t> expected;
  for (uint64_t s = 0; s < 9; ++s) {
    lists.push_back(RandomSortedList(500 + 700 * s, 1 << 18, 40 + s));
    expected = RefUnion(expected, lists.back());
  }
  std::vector<std::unique_ptr<CompressedSet>> sets;
  std::vector<const CompressedSet*> ptrs;
  for (const auto& l : lists) {
    sets.push_back(codec.Encode(l, 1 << 18));
    ptrs.push_back(sets.back().get());
  }
  std::vector<uint32_t> got;
  UnionSets(codec, ptrs, &got);
  EXPECT_EQ(got, expected);
}

TEST(KWayUnionTest, DuplicateHeavyInputs) {
  const Codec& codec = *FindCodec("VB");
  auto shared = RandomSortedList(2000, 1 << 16, 50);
  std::vector<std::unique_ptr<CompressedSet>> sets;
  std::vector<const CompressedSet*> ptrs;
  for (int i = 0; i < 5; ++i) {
    sets.push_back(codec.Encode(shared, 1 << 16));
    ptrs.push_back(sets.back().get());
  }
  std::vector<uint32_t> got;
  UnionSets(codec, ptrs, &got);
  EXPECT_EQ(got, shared);
}

}  // namespace
}  // namespace intcomp
