// Differential fuzzing: random list shapes and operation sequences, with
// every codec's output compared against the std::set_* reference and
// against every other codec. Seeds are fixed, so failures reproduce; crank
// --gtest_repeat or widen kRounds for longer campaigns.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "core/registry.h"
#include "core/set_ops.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

// Random list with a randomly chosen shape: uniform / clustered / zipf-ish /
// runs, random density, random domain.
std::vector<uint32_t> RandomShapedList(Prng& rng) {
  const uint64_t domain = uint64_t{1}
                          << (10 + rng.NextBounded(22));  // 2^10 .. 2^31
  const size_t max_n = static_cast<size_t>(
      std::min<uint64_t>(domain / 2, 30000));
  const size_t n = 1 + rng.NextBounded(std::max<size_t>(1, max_n));
  switch (rng.NextBounded(4)) {
    case 0:
      return GenerateUniform(n, domain, rng.Next());
    case 1:
      return GenerateMarkov(n, domain, 2 + rng.NextBounded(16), rng.Next());
    case 2:
      return GenerateZipf(n, domain, 0.7 + rng.NextDouble(), rng.Next());
    default: {
      // Adversarial: consecutive runs separated by erratic gaps.
      std::vector<uint32_t> v;
      uint64_t pos = rng.NextBounded(1 << 16);
      while (v.size() < n && pos < domain) {
        uint64_t run = 1 + rng.NextBounded(64);
        while (run-- > 0 && v.size() < n && pos < domain) {
          v.push_back(static_cast<uint32_t>(pos++));
        }
        pos += rng.NextBounded(1 << (1 + rng.NextBounded(20)));
      }
      return v;
    }
  }
}

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, AllCodecsAgree) {
  Prng rng(GetParam() * 0x9e3779b97f4a7c15ull + 1);
  const auto a = RandomShapedList(rng);
  const auto b = RandomShapedList(rng);
  const auto probe = RandomShapedList(rng);
  const auto ref_and = RefIntersect(a, b);
  const auto ref_or = RefUnion(a, b);
  const auto ref_probe = RefIntersect(a, probe);

  std::vector<const Codec*> codecs(AllCodecs().begin(), AllCodecs().end());
  codecs.insert(codecs.end(), ExtensionCodecs().begin(),
                ExtensionCodecs().end());
  const uint64_t domain = uint64_t{1} << 32;
  for (const Codec* codec : codecs) {
    SCOPED_TRACE(std::string(codec->Name()));
    auto sa = codec->Encode(a, domain);
    auto sb = codec->Encode(b, domain);
    std::vector<uint32_t> decoded;
    codec->Decode(*sa, &decoded);
    ASSERT_EQ(decoded, a);
    std::vector<uint32_t> out;
    codec->Intersect(*sa, *sb, &out);
    ASSERT_EQ(out, ref_and);
    codec->Union(*sa, *sb, &out);
    ASSERT_EQ(out, ref_or);
    codec->IntersectWithList(*sa, probe, &out);
    ASSERT_EQ(out, ref_probe);

    // Serialization must preserve behaviour, not just bytes.
    std::vector<uint8_t> image;
    codec->Serialize(*sa, &image);
    auto restored = codec->Deserialize(image.data(), image.size());
    ASSERT_NE(restored, nullptr);
    codec->Intersect(*restored, *sb, &out);
    ASSERT_EQ(out, ref_and);
  }
}

TEST_P(FuzzDifferentialTest, MultiListPlansAgree) {
  Prng rng(GetParam() * 0xd1342543de82ef95ull + 7);
  const size_t k = 3 + rng.NextBounded(3);
  std::vector<std::vector<uint32_t>> lists;
  for (size_t i = 0; i < k; ++i) lists.push_back(RandomShapedList(rng));

  std::vector<uint32_t> ref_and = lists[0];
  std::vector<uint32_t> ref_or = lists[0];
  for (size_t i = 1; i < k; ++i) {
    ref_and = RefIntersect(ref_and, lists[i]);
    ref_or = RefUnion(ref_or, lists[i]);
  }

  const uint64_t domain = uint64_t{1} << 32;
  for (const Codec* codec : AllCodecs()) {
    SCOPED_TRACE(std::string(codec->Name()));
    std::vector<std::unique_ptr<CompressedSet>> sets;
    std::vector<const CompressedSet*> ptrs;
    for (const auto& l : lists) {
      sets.push_back(codec->Encode(l, domain));
      ptrs.push_back(sets.back().get());
    }
    std::vector<uint32_t> out;
    IntersectSets(*codec, ptrs, &out);
    ASSERT_EQ(out, ref_and);
    UnionSets(*codec, ptrs, &out);
    ASSERT_EQ(out, ref_or);
    DifferenceSets(*codec, *sets[0], *sets[1], &out);
    std::vector<uint32_t> ref_diff;
    std::set_difference(lists[0].begin(), lists[0].end(), lists[1].begin(),
                        lists[1].end(), std::back_inserter(ref_diff));
    ASSERT_EQ(out, ref_diff);
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FuzzDifferentialTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace intcomp
