// Differential fuzzing: random list shapes and operation sequences, with
// every codec's output compared against the std::set_* reference and
// against every other codec. Seeds are fixed, so failures reproduce; crank
// --gtest_repeat or widen kRounds for longer campaigns.
//
// The kernel-differential half pins the scalar / SIMD / auto kernel modes to
// bit-identical outputs: raw kernel twins head-to-head, plus every codec's
// Intersect / Union / IntersectWithList re-run under each mode. This binary
// carries its own main() to parse --fuzz-iters=N (the CI budget knob; the
// acceptance campaign is --fuzz-iters=10000).

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "common/simd_intersect.h"
#include "core/registry.h"
#include "core/set_ops.h"
#include "engine/batch_executor.h"
#include "engine/thread_pool.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace intcomp {

int g_fuzz_iters = 150;  // kernel-differential rounds per codec

namespace {

// Restores the process-wide kernel mode on scope exit so the kernel tests
// cannot leak a forced mode into the rest of the suite.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode) : prev_(GetKernelMode()) {
    SetKernelMode(mode);
  }
  ~ScopedKernelMode() { SetKernelMode(prev_); }
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  KernelMode prev_;
};

// Random list with a randomly chosen shape: uniform / clustered / zipf-ish /
// runs, random density, random domain.
std::vector<uint32_t> RandomShapedList(Prng& rng) {
  const uint64_t domain = uint64_t{1}
                          << (10 + rng.NextBounded(22));  // 2^10 .. 2^31
  const size_t max_n = static_cast<size_t>(
      std::min<uint64_t>(domain / 2, 30000));
  const size_t n = 1 + rng.NextBounded(std::max<size_t>(1, max_n));
  switch (rng.NextBounded(4)) {
    case 0:
      return GenerateUniform(n, domain, rng.Next());
    case 1:
      return GenerateMarkov(n, domain, 2 + rng.NextBounded(16), rng.Next());
    case 2:
      return GenerateZipf(n, domain, 0.7 + rng.NextDouble(), rng.Next());
    default: {
      // Adversarial: consecutive runs separated by erratic gaps.
      std::vector<uint32_t> v;
      uint64_t pos = rng.NextBounded(1 << 16);
      while (v.size() < n && pos < domain) {
        uint64_t run = 1 + rng.NextBounded(64);
        while (run-- > 0 && v.size() < n && pos < domain) {
          v.push_back(static_cast<uint32_t>(pos++));
        }
        pos += rng.NextBounded(1 << (1 + rng.NextBounded(20)));
      }
      return v;
    }
  }
}

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, AllCodecsAgree) {
  Prng rng(GetParam() * 0x9e3779b97f4a7c15ull + 1);
  const auto a = RandomShapedList(rng);
  const auto b = RandomShapedList(rng);
  const auto probe = RandomShapedList(rng);
  const auto ref_and = RefIntersect(a, b);
  const auto ref_or = RefUnion(a, b);
  const auto ref_probe = RefIntersect(a, probe);

  const auto codecs = AllCodecsWithExtensions();
  const uint64_t domain = uint64_t{1} << 32;
  for (const Codec* codec : codecs) {
    SCOPED_TRACE(std::string(codec->Name()));
    auto sa = codec->Encode(a, domain);
    auto sb = codec->Encode(b, domain);
    std::vector<uint32_t> decoded;
    codec->Decode(*sa, &decoded);
    ASSERT_EQ(decoded, a);
    std::vector<uint32_t> out;
    codec->Intersect(*sa, *sb, &out);
    ASSERT_EQ(out, ref_and);
    codec->Union(*sa, *sb, &out);
    ASSERT_EQ(out, ref_or);
    codec->IntersectWithList(*sa, probe, &out);
    ASSERT_EQ(out, ref_probe);

    // Serialization must preserve behaviour, not just bytes.
    std::vector<uint8_t> image;
    codec->Serialize(*sa, &image);
    auto restored = codec->Deserialize(image.data(), image.size());
    ASSERT_NE(restored, nullptr);
    codec->Intersect(*restored, *sb, &out);
    ASSERT_EQ(out, ref_and);
  }
}

TEST_P(FuzzDifferentialTest, MultiListPlansAgree) {
  Prng rng(GetParam() * 0xd1342543de82ef95ull + 7);
  const size_t k = 3 + rng.NextBounded(3);
  std::vector<std::vector<uint32_t>> lists;
  for (size_t i = 0; i < k; ++i) lists.push_back(RandomShapedList(rng));

  std::vector<uint32_t> ref_and = lists[0];
  std::vector<uint32_t> ref_or = lists[0];
  for (size_t i = 1; i < k; ++i) {
    ref_and = RefIntersect(ref_and, lists[i]);
    ref_or = RefUnion(ref_or, lists[i]);
  }

  const uint64_t domain = uint64_t{1} << 32;
  for (const Codec* codec : AllCodecs()) {
    SCOPED_TRACE(std::string(codec->Name()));
    std::vector<std::unique_ptr<CompressedSet>> sets;
    std::vector<const CompressedSet*> ptrs;
    for (const auto& l : lists) {
      sets.push_back(codec->Encode(l, domain));
      ptrs.push_back(sets.back().get());
    }
    std::vector<uint32_t> out;
    IntersectSets(*codec, ptrs, &out);
    ASSERT_EQ(out, ref_and);
    UnionSets(*codec, ptrs, &out);
    ASSERT_EQ(out, ref_or);
    DifferenceSets(*codec, *sets[0], *sets[1], &out);
    std::vector<uint32_t> ref_diff;
    std::set_difference(lists[0].begin(), lists[0].end(), lists[1].begin(),
                        lists[1].end(), std::back_inserter(ref_diff));
    ASSERT_EQ(out, ref_diff);
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FuzzDifferentialTest,
                         ::testing::Range<uint64_t>(0, 12));

// ------------------------------------------------- adversarial fixed shapes
//
// Hand-picked worst cases for run-length and block codecs: pure runs,
// alternating bits (the RLE pessimum), singletons, the 2^32-1 universe
// boundary, and pairs with empty intersections. Every pair is cross-checked
// against a literal std::set oracle, through the serial drivers AND through
// the batch engine.

constexpr uint32_t kMaxU32 = 4294967295u;  // 2^32 - 1 universe boundary

struct AdversarialShape {
  const char* name;
  std::vector<uint32_t> values;
};

std::vector<AdversarialShape> AdversarialShapes() {
  std::vector<AdversarialShape> shapes;
  shapes.push_back({"empty", {}});
  shapes.push_back({"singleton_zero", {0}});
  shapes.push_back({"singleton_max", {kMaxU32}});
  {
    // All-runs bitmap: long literal runs split by long zero runs, plus a
    // run ending exactly at the universe boundary.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 3000; ++i) v.push_back(i);
    for (uint32_t i = 0; i < 3000; ++i) v.push_back(1u << 20 | i);
    for (uint32_t i = 0; i < 3000; ++i) v.push_back(kMaxU32 - 2999 + i);
    shapes.push_back({"all_runs", std::move(v)});
  }
  {
    // Alternating bits: the worst case for every RLE scheme (no run ever
    // forms) and a dense-block stress for Roaring containers.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 40000; i += 2) v.push_back(i);
    shapes.push_back({"alternating", std::move(v)});
  }
  {
    // Alternating, offset by one: intersects the above to the empty set.
    std::vector<uint32_t> v;
    for (uint32_t i = 1; i < 40000; i += 2) v.push_back(i);
    shapes.push_back({"alternating_odd", std::move(v)});
  }
  {
    // Sparse tail hugging the boundary: every value in the last 2^16 chunk.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 1000; ++i) v.push_back(kMaxU32 - 3 * i);
    std::sort(v.begin(), v.end());
    shapes.push_back({"sparse_near_max", std::move(v)});
  }
  {
    // Wide stride: one value per WAH word-span, so every gap is a fill.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 2000; ++i) v.push_back(i * 65537u);
    shapes.push_back({"wide_stride", std::move(v)});
  }
  return shapes;
}

// Literal std::set oracle — deliberately naive, independent of the list
// helpers the production code shares.
std::vector<uint32_t> SetOracleIntersect(const std::vector<uint32_t>& a,
                                         const std::vector<uint32_t>& b) {
  const std::set<uint32_t> sb(b.begin(), b.end());
  std::vector<uint32_t> out;
  for (uint32_t v : a) {
    if (sb.count(v)) out.push_back(v);
  }
  return out;
}

std::vector<uint32_t> SetOracleUnion(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  std::set<uint32_t> s(a.begin(), a.end());
  s.insert(b.begin(), b.end());
  return std::vector<uint32_t>(s.begin(), s.end());
}

std::vector<const Codec*> AllPlusExtensions() {
  // Shared roster (core/registry.h): paper methods + extensions, so this
  // suite can never drift from the other differential suites.
  return {AllCodecsWithExtensions().begin(), AllCodecsWithExtensions().end()};
}

TEST(AdversarialDifferentialTest, SerialPathMatchesSetOracle) {
  const uint64_t domain = uint64_t{1} << 32;
  const auto shapes = AdversarialShapes();
  for (const Codec* codec : AllPlusExtensions()) {
    SCOPED_TRACE(std::string(codec->Name()));
    std::vector<std::unique_ptr<CompressedSet>> sets;
    for (const auto& s : shapes) sets.push_back(codec->Encode(s.values, domain));
    for (size_t i = 0; i < shapes.size(); ++i) {
      SCOPED_TRACE(shapes[i].name);
      std::vector<uint32_t> out;
      codec->Decode(*sets[i], &out);
      ASSERT_EQ(out, shapes[i].values);
      // Serialization must survive the adversarial shape too.
      std::vector<uint8_t> image;
      codec->Serialize(*sets[i], &image);
      auto restored = codec->Deserialize(image.data(), image.size());
      ASSERT_NE(restored, nullptr);
      codec->Decode(*restored, &out);
      ASSERT_EQ(out, shapes[i].values);
      for (size_t j = 0; j < shapes.size(); ++j) {
        SCOPED_TRACE(shapes[j].name);
        codec->Intersect(*sets[i], *sets[j], &out);
        ASSERT_EQ(out, SetOracleIntersect(shapes[i].values, shapes[j].values));
        codec->Union(*sets[i], *sets[j], &out);
        ASSERT_EQ(out, SetOracleUnion(shapes[i].values, shapes[j].values));
        codec->IntersectWithList(*sets[i], shapes[j].values, &out);
        ASSERT_EQ(out, SetOracleIntersect(shapes[j].values, shapes[i].values));
      }
    }
  }
}

TEST(AdversarialDifferentialTest, BatchPathMatchesSetOracle) {
  // The same pairwise grid, driven through the batch engine: one AND and
  // one OR plan per shape pair, all submitted as a single batch per codec.
  const uint64_t domain = uint64_t{1} << 32;
  const auto shapes = AdversarialShapes();
  std::vector<QueryPlan> plans;
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t i = 0; i < shapes.size(); ++i) {
    for (size_t j = 0; j < shapes.size(); ++j) {
      plans.push_back(QueryPlan::And({QueryPlan::Leaf(i), QueryPlan::Leaf(j)}));
      plans.push_back(QueryPlan::Or({QueryPlan::Leaf(i), QueryPlan::Leaf(j)}));
      pairs.emplace_back(i, j);
    }
  }

  ThreadPool pool(4);
  BatchExecutor exec(&pool);
  for (const Codec* codec : AllPlusExtensions()) {
    SCOPED_TRACE(std::string(codec->Name()));
    std::vector<std::unique_ptr<CompressedSet>> sets;
    std::vector<const CompressedSet*> ptrs;
    for (const auto& s : shapes) {
      sets.push_back(codec->Encode(s.values, domain));
      ptrs.push_back(sets.back().get());
    }
    const auto results = exec.Execute({.codec = codec, .plans = plans, .sets = ptrs});
    ASSERT_EQ(results.size(), plans.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
      const auto& [i, j] = pairs[p];
      SCOPED_TRACE(std::string(shapes[i].name) + " x " + shapes[j].name);
      ASSERT_EQ(results[2 * p],
                SetOracleIntersect(shapes[i].values, shapes[j].values));
      ASSERT_EQ(results[2 * p + 1],
                SetOracleUnion(shapes[i].values, shapes[j].values));
    }
  }
}

// --------------------------------------------------- kernel differential
//
// The SIMD kernels must be exact behavioral twins of their scalar
// counterparts: same inputs, bit-identical outputs, for every shape. Three
// layers of checking: the raw kernel pairs head-to-head, fixed
// block-boundary adversarial shapes through every codec under each mode,
// and randomized per-codec rounds (--fuzz-iters of them).

// Smaller random lists than RandomShapedList: the kernel fuzz runs many
// more rounds per codec, so each round stays cheap.
std::vector<uint32_t> SmallRandomList(Prng& rng) {
  const uint64_t domain = uint64_t{1} << (8 + rng.NextBounded(24));
  const size_t max_n =
      static_cast<size_t>(std::min<uint64_t>(domain / 2, 1500));
  const size_t n = rng.NextBounded(std::max<size_t>(2, max_n));
  if (n == 0) return {};
  switch (rng.NextBounded(3)) {
    case 0:
      return GenerateUniform(n, domain, rng.Next());
    case 1:
      return GenerateMarkov(n, domain, 2 + rng.NextBounded(16), rng.Next());
    default: {
      // Block-boundary aware: runs whose lengths hover around multiples of
      // the 128-value block size, so block edges land inside and between
      // runs in every alignment.
      std::vector<uint32_t> v;
      uint64_t pos = rng.NextBounded(256);
      while (v.size() < n && pos < domain) {
        uint64_t run = 128 * (1 + rng.NextBounded(2)) + rng.NextBounded(5) - 2;
        while (run-- > 0 && v.size() < n && pos < domain) {
          v.push_back(static_cast<uint32_t>(pos++));
        }
        pos += 1 + rng.NextBounded(1 << (1 + rng.NextBounded(16)));
      }
      return v;
    }
  }
}

TEST(KernelTwinsTest, ScalarAndSimdKernelsBitIdentical) {
  Prng rng(0x5ee5ee);
  for (int it = 0; it < std::max(2000, g_fuzz_iters); ++it) {
    const auto a = SmallRandomList(rng);
    const auto b = SmallRandomList(rng);
    SCOPED_TRACE("iter " + std::to_string(it));

    std::vector<uint32_t> scalar, simd;
    ScalarMergeIntersectInto(a, b, &scalar);
    SimdMergeIntersectInto(a, b, &simd);
    ASSERT_EQ(simd, scalar) << "merge intersect";
    ASSERT_EQ(scalar, RefIntersect(a, b));

    scalar.clear();
    simd.clear();
    const auto& small = a.size() <= b.size() ? a : b;
    const auto& large = a.size() <= b.size() ? b : a;
    ScalarGallopIntersectInto(small, large, &scalar);
    SimdGallopIntersectInto(small, large, &simd);
    ASSERT_EQ(simd, scalar) << "gallop intersect";
    ASSERT_EQ(scalar, RefIntersect(a, b));

    scalar.clear();
    simd.clear();
    ScalarMergeUnionInto(a, b, &scalar);
    SimdMergeUnionInto(a, b, &simd);
    ASSERT_EQ(simd, scalar) << "union merge";
    ASSERT_EQ(scalar, RefUnion(a, b));
  }
}

// Fixed shapes that stress 128-value block edges: full blocks, one-off
// blocks, probes pinned to skip_first values, probes past the last block,
// and dense tails crossing a block boundary.
std::vector<AdversarialShape> BlockBoundaryShapes() {
  std::vector<AdversarialShape> shapes;
  for (const size_t n : {127u, 128u, 129u, 256u, 257u}) {
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < n; ++i) v.push_back(3 * i + 1);
    shapes.push_back({"stride3_n", std::move(v)});
  }
  {
    // Every 128th value of a long range: each probe is some block's
    // skip_first, so the gallop-to-block path hits exact boundaries.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 1024; ++i) v.push_back(i * 128);
    shapes.push_back({"skip_first_probes", std::move(v)});
  }
  {
    // Values straddling each block edge of a dense 8-block list.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 8 * 128; ++i) v.push_back(i);
    shapes.push_back({"dense_8_blocks", std::move(v)});
  }
  {
    // Sparse head + dense tail crossing the final block boundary, ending
    // far below any probe that targets past the last block.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 100; ++i) v.push_back(i * 100000);
    for (uint32_t i = 0; i < 300; ++i) v.push_back(10000000 + i);
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    shapes.push_back({"sparse_head_dense_tail", std::move(v)});
  }
  {
    // Probes entirely past the other lists' last block.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 200; ++i) v.push_back(4000000000u + 7 * i);
    shapes.push_back({"past_last_block", std::move(v)});
  }
  return shapes;
}

TEST(KernelDifferentialTest, BlockBoundaryShapesAgreeAcrossModes) {
  const uint64_t domain = uint64_t{1} << 32;
  const auto shapes = BlockBoundaryShapes();
  const KernelMode modes[] = {KernelMode::kScalar, KernelMode::kSimd,
                              KernelMode::kAuto};
  for (const Codec* codec : AllPlusExtensions()) {
    SCOPED_TRACE(std::string(codec->Name()));
    std::vector<std::unique_ptr<CompressedSet>> sets;
    for (const auto& s : shapes) sets.push_back(codec->Encode(s.values, domain));
    for (size_t i = 0; i < shapes.size(); ++i) {
      for (size_t j = 0; j < shapes.size(); ++j) {
        SCOPED_TRACE(std::string(shapes[i].name) + " x " + shapes[j].name);
        const auto ref_and =
            SetOracleIntersect(shapes[i].values, shapes[j].values);
        const auto ref_or = SetOracleUnion(shapes[i].values, shapes[j].values);
        for (const KernelMode mode : modes) {
          SCOPED_TRACE(std::string(KernelModeName(mode)));
          ScopedKernelMode guard(mode);
          std::vector<uint32_t> out;
          codec->Intersect(*sets[i], *sets[j], &out);
          ASSERT_EQ(out, ref_and);
          codec->Union(*sets[i], *sets[j], &out);
          ASSERT_EQ(out, ref_or);
          codec->IntersectWithList(*sets[i], shapes[j].values, &out);
          ASSERT_EQ(out, ref_and);
        }
      }
    }
  }
}

// Randomized per-codec rounds: every operation re-run under each mode must
// be bit-identical. --fuzz-iters=10000 is the acceptance campaign.
class KernelDifferentialFuzzTest : public ::testing::TestWithParam<const Codec*> {};

TEST_P(KernelDifferentialFuzzTest, ModesBitIdentical) {
  const Codec& codec = *GetParam();
  Prng prng(std::hash<std::string_view>{}(codec.Name()) ^ 0xfeedface);
  const uint64_t domain = uint64_t{1} << 32;
  for (int it = 0; it < g_fuzz_iters; ++it) {
    SCOPED_TRACE("iter " + std::to_string(it));
    const auto a = SmallRandomList(prng);
    const auto b = SmallRandomList(prng);
    auto sa = codec.Encode(a, domain);
    auto sb = codec.Encode(b, domain);

    std::vector<uint32_t> and_s, or_s, probe_s;
    {
      ScopedKernelMode guard(KernelMode::kScalar);
      codec.Intersect(*sa, *sb, &and_s);
      codec.Union(*sa, *sb, &or_s);
      codec.IntersectWithList(*sa, b, &probe_s);
    }
    ASSERT_EQ(and_s, RefIntersect(a, b));
    ASSERT_EQ(or_s, RefUnion(a, b));
    ASSERT_EQ(probe_s, RefIntersect(a, b));
    for (const KernelMode mode : {KernelMode::kSimd, KernelMode::kAuto}) {
      SCOPED_TRACE(std::string(KernelModeName(mode)));
      ScopedKernelMode guard(mode);
      std::vector<uint32_t> out;
      codec.Intersect(*sa, *sb, &out);
      ASSERT_EQ(out, and_s);
      codec.Union(*sa, *sb, &out);
      ASSERT_EQ(out, or_s);
      codec.IntersectWithList(*sa, b, &out);
      ASSERT_EQ(out, probe_s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, KernelDifferentialFuzzTest,
    ::testing::ValuesIn(AllPlusExtensions()),
    [](const ::testing::TestParamInfo<const Codec*>& info) {
      std::string name(info.param->Name());
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const char* value = nullptr;
    if (arg.rfind("--fuzz-iters=", 0) == 0) {
      value = argv[i] + 13;
    } else if (arg == "--fuzz-iters" && i + 1 < argc) {
      value = argv[++i];
    } else {
      continue;
    }
    char* end = nullptr;
    const long iters = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || iters <= 0) {
      std::fprintf(stderr,
                   "--fuzz-iters: expected a positive integer, got '%s'\n",
                   value);
      return 1;
    }
    intcomp::g_fuzz_iters = static_cast<int>(iters);
  }
  return RUN_ALL_TESTS();
}
