// Differential fuzzing: random list shapes and operation sequences, with
// every codec's output compared against the std::set_* reference and
// against every other codec. Seeds are fixed, so failures reproduce; crank
// --gtest_repeat or widen kRounds for longer campaigns.

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "core/registry.h"
#include "core/set_ops.h"
#include "engine/batch_executor.h"
#include "engine/thread_pool.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

// Random list with a randomly chosen shape: uniform / clustered / zipf-ish /
// runs, random density, random domain.
std::vector<uint32_t> RandomShapedList(Prng& rng) {
  const uint64_t domain = uint64_t{1}
                          << (10 + rng.NextBounded(22));  // 2^10 .. 2^31
  const size_t max_n = static_cast<size_t>(
      std::min<uint64_t>(domain / 2, 30000));
  const size_t n = 1 + rng.NextBounded(std::max<size_t>(1, max_n));
  switch (rng.NextBounded(4)) {
    case 0:
      return GenerateUniform(n, domain, rng.Next());
    case 1:
      return GenerateMarkov(n, domain, 2 + rng.NextBounded(16), rng.Next());
    case 2:
      return GenerateZipf(n, domain, 0.7 + rng.NextDouble(), rng.Next());
    default: {
      // Adversarial: consecutive runs separated by erratic gaps.
      std::vector<uint32_t> v;
      uint64_t pos = rng.NextBounded(1 << 16);
      while (v.size() < n && pos < domain) {
        uint64_t run = 1 + rng.NextBounded(64);
        while (run-- > 0 && v.size() < n && pos < domain) {
          v.push_back(static_cast<uint32_t>(pos++));
        }
        pos += rng.NextBounded(1 << (1 + rng.NextBounded(20)));
      }
      return v;
    }
  }
}

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, AllCodecsAgree) {
  Prng rng(GetParam() * 0x9e3779b97f4a7c15ull + 1);
  const auto a = RandomShapedList(rng);
  const auto b = RandomShapedList(rng);
  const auto probe = RandomShapedList(rng);
  const auto ref_and = RefIntersect(a, b);
  const auto ref_or = RefUnion(a, b);
  const auto ref_probe = RefIntersect(a, probe);

  std::vector<const Codec*> codecs(AllCodecs().begin(), AllCodecs().end());
  codecs.insert(codecs.end(), ExtensionCodecs().begin(),
                ExtensionCodecs().end());
  const uint64_t domain = uint64_t{1} << 32;
  for (const Codec* codec : codecs) {
    SCOPED_TRACE(std::string(codec->Name()));
    auto sa = codec->Encode(a, domain);
    auto sb = codec->Encode(b, domain);
    std::vector<uint32_t> decoded;
    codec->Decode(*sa, &decoded);
    ASSERT_EQ(decoded, a);
    std::vector<uint32_t> out;
    codec->Intersect(*sa, *sb, &out);
    ASSERT_EQ(out, ref_and);
    codec->Union(*sa, *sb, &out);
    ASSERT_EQ(out, ref_or);
    codec->IntersectWithList(*sa, probe, &out);
    ASSERT_EQ(out, ref_probe);

    // Serialization must preserve behaviour, not just bytes.
    std::vector<uint8_t> image;
    codec->Serialize(*sa, &image);
    auto restored = codec->Deserialize(image.data(), image.size());
    ASSERT_NE(restored, nullptr);
    codec->Intersect(*restored, *sb, &out);
    ASSERT_EQ(out, ref_and);
  }
}

TEST_P(FuzzDifferentialTest, MultiListPlansAgree) {
  Prng rng(GetParam() * 0xd1342543de82ef95ull + 7);
  const size_t k = 3 + rng.NextBounded(3);
  std::vector<std::vector<uint32_t>> lists;
  for (size_t i = 0; i < k; ++i) lists.push_back(RandomShapedList(rng));

  std::vector<uint32_t> ref_and = lists[0];
  std::vector<uint32_t> ref_or = lists[0];
  for (size_t i = 1; i < k; ++i) {
    ref_and = RefIntersect(ref_and, lists[i]);
    ref_or = RefUnion(ref_or, lists[i]);
  }

  const uint64_t domain = uint64_t{1} << 32;
  for (const Codec* codec : AllCodecs()) {
    SCOPED_TRACE(std::string(codec->Name()));
    std::vector<std::unique_ptr<CompressedSet>> sets;
    std::vector<const CompressedSet*> ptrs;
    for (const auto& l : lists) {
      sets.push_back(codec->Encode(l, domain));
      ptrs.push_back(sets.back().get());
    }
    std::vector<uint32_t> out;
    IntersectSets(*codec, ptrs, &out);
    ASSERT_EQ(out, ref_and);
    UnionSets(*codec, ptrs, &out);
    ASSERT_EQ(out, ref_or);
    DifferenceSets(*codec, *sets[0], *sets[1], &out);
    std::vector<uint32_t> ref_diff;
    std::set_difference(lists[0].begin(), lists[0].end(), lists[1].begin(),
                        lists[1].end(), std::back_inserter(ref_diff));
    ASSERT_EQ(out, ref_diff);
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FuzzDifferentialTest,
                         ::testing::Range<uint64_t>(0, 12));

// ------------------------------------------------- adversarial fixed shapes
//
// Hand-picked worst cases for run-length and block codecs: pure runs,
// alternating bits (the RLE pessimum), singletons, the 2^32-1 universe
// boundary, and pairs with empty intersections. Every pair is cross-checked
// against a literal std::set oracle, through the serial drivers AND through
// the batch engine.

constexpr uint32_t kMaxU32 = 4294967295u;  // 2^32 - 1 universe boundary

struct AdversarialShape {
  const char* name;
  std::vector<uint32_t> values;
};

std::vector<AdversarialShape> AdversarialShapes() {
  std::vector<AdversarialShape> shapes;
  shapes.push_back({"empty", {}});
  shapes.push_back({"singleton_zero", {0}});
  shapes.push_back({"singleton_max", {kMaxU32}});
  {
    // All-runs bitmap: long literal runs split by long zero runs, plus a
    // run ending exactly at the universe boundary.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 3000; ++i) v.push_back(i);
    for (uint32_t i = 0; i < 3000; ++i) v.push_back(1u << 20 | i);
    for (uint32_t i = 0; i < 3000; ++i) v.push_back(kMaxU32 - 2999 + i);
    shapes.push_back({"all_runs", std::move(v)});
  }
  {
    // Alternating bits: the worst case for every RLE scheme (no run ever
    // forms) and a dense-block stress for Roaring containers.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 40000; i += 2) v.push_back(i);
    shapes.push_back({"alternating", std::move(v)});
  }
  {
    // Alternating, offset by one: intersects the above to the empty set.
    std::vector<uint32_t> v;
    for (uint32_t i = 1; i < 40000; i += 2) v.push_back(i);
    shapes.push_back({"alternating_odd", std::move(v)});
  }
  {
    // Sparse tail hugging the boundary: every value in the last 2^16 chunk.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 1000; ++i) v.push_back(kMaxU32 - 3 * i);
    std::sort(v.begin(), v.end());
    shapes.push_back({"sparse_near_max", std::move(v)});
  }
  {
    // Wide stride: one value per WAH word-span, so every gap is a fill.
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 2000; ++i) v.push_back(i * 65537u);
    shapes.push_back({"wide_stride", std::move(v)});
  }
  return shapes;
}

// Literal std::set oracle — deliberately naive, independent of the list
// helpers the production code shares.
std::vector<uint32_t> SetOracleIntersect(const std::vector<uint32_t>& a,
                                         const std::vector<uint32_t>& b) {
  const std::set<uint32_t> sb(b.begin(), b.end());
  std::vector<uint32_t> out;
  for (uint32_t v : a) {
    if (sb.count(v)) out.push_back(v);
  }
  return out;
}

std::vector<uint32_t> SetOracleUnion(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  std::set<uint32_t> s(a.begin(), a.end());
  s.insert(b.begin(), b.end());
  return std::vector<uint32_t>(s.begin(), s.end());
}

std::vector<const Codec*> AllPlusExtensions() {
  std::vector<const Codec*> codecs(AllCodecs().begin(), AllCodecs().end());
  codecs.insert(codecs.end(), ExtensionCodecs().begin(),
                ExtensionCodecs().end());
  return codecs;
}

TEST(AdversarialDifferentialTest, SerialPathMatchesSetOracle) {
  const uint64_t domain = uint64_t{1} << 32;
  const auto shapes = AdversarialShapes();
  for (const Codec* codec : AllPlusExtensions()) {
    SCOPED_TRACE(std::string(codec->Name()));
    std::vector<std::unique_ptr<CompressedSet>> sets;
    for (const auto& s : shapes) sets.push_back(codec->Encode(s.values, domain));
    for (size_t i = 0; i < shapes.size(); ++i) {
      SCOPED_TRACE(shapes[i].name);
      std::vector<uint32_t> out;
      codec->Decode(*sets[i], &out);
      ASSERT_EQ(out, shapes[i].values);
      // Serialization must survive the adversarial shape too.
      std::vector<uint8_t> image;
      codec->Serialize(*sets[i], &image);
      auto restored = codec->Deserialize(image.data(), image.size());
      ASSERT_NE(restored, nullptr);
      codec->Decode(*restored, &out);
      ASSERT_EQ(out, shapes[i].values);
      for (size_t j = 0; j < shapes.size(); ++j) {
        SCOPED_TRACE(shapes[j].name);
        codec->Intersect(*sets[i], *sets[j], &out);
        ASSERT_EQ(out, SetOracleIntersect(shapes[i].values, shapes[j].values));
        codec->Union(*sets[i], *sets[j], &out);
        ASSERT_EQ(out, SetOracleUnion(shapes[i].values, shapes[j].values));
        codec->IntersectWithList(*sets[i], shapes[j].values, &out);
        ASSERT_EQ(out, SetOracleIntersect(shapes[j].values, shapes[i].values));
      }
    }
  }
}

TEST(AdversarialDifferentialTest, BatchPathMatchesSetOracle) {
  // The same pairwise grid, driven through the batch engine: one AND and
  // one OR plan per shape pair, all submitted as a single batch per codec.
  const uint64_t domain = uint64_t{1} << 32;
  const auto shapes = AdversarialShapes();
  std::vector<QueryPlan> plans;
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t i = 0; i < shapes.size(); ++i) {
    for (size_t j = 0; j < shapes.size(); ++j) {
      plans.push_back(QueryPlan::And({QueryPlan::Leaf(i), QueryPlan::Leaf(j)}));
      plans.push_back(QueryPlan::Or({QueryPlan::Leaf(i), QueryPlan::Leaf(j)}));
      pairs.emplace_back(i, j);
    }
  }

  ThreadPool pool(4);
  BatchExecutor exec(&pool);
  for (const Codec* codec : AllPlusExtensions()) {
    SCOPED_TRACE(std::string(codec->Name()));
    std::vector<std::unique_ptr<CompressedSet>> sets;
    std::vector<const CompressedSet*> ptrs;
    for (const auto& s : shapes) {
      sets.push_back(codec->Encode(s.values, domain));
      ptrs.push_back(sets.back().get());
    }
    const auto results = exec.Execute({.codec = codec, .plans = plans, .sets = ptrs});
    ASSERT_EQ(results.size(), plans.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
      const auto& [i, j] = pairs[p];
      SCOPED_TRACE(std::string(shapes[i].name) + " x " + shapes[j].name);
      ASSERT_EQ(results[2 * p],
                SetOracleIntersect(shapes[i].values, shapes[j].values));
      ASSERT_EQ(results[2 * p + 1],
                SetOracleUnion(shapes[i].values, shapes[j].values));
    }
  }
}

}  // namespace
}  // namespace intcomp
