// Golden serialized-image regression vectors: one committed byte image per
// codec × distribution under tests/data/golden/. The test re-encodes the
// fixed workload and byte-compares against the committed image, so any
// accidental change to a codec's wire format fails loudly, then round-trips
// the committed image through DeserializeChecked + Decode to prove old
// persisted data stays readable.
//
// When a format change is INTENTIONAL, regenerate and commit the vectors:
//
//   ./tests/golden_image_test --regen-golden
//
// (also re-verifies every vector after writing it). The generator inputs
// are fixed constants on purpose — golden data must not depend on
// INTCOMP_TEST_SEED.

#include <cctype>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

#ifndef INTCOMP_GOLDEN_DIR
#error "build must define INTCOMP_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

bool g_regen = false;

constexpr uint64_t kDomain = 1 << 16;
constexpr size_t kN = 1000;

struct Distribution {
  const char* name;
  std::vector<uint32_t> (*generate)(uint64_t seed);
};

std::vector<uint32_t> GoldenUniform(uint64_t seed) {
  return GenerateUniform(kN, kDomain, seed);
}
std::vector<uint32_t> GoldenZipf(uint64_t seed) {
  return GenerateZipf(kN, kDomain, kPaperZipfSkew, seed);
}
std::vector<uint32_t> GoldenMarkov(uint64_t seed) {
  return GenerateMarkov(kN, kDomain, kPaperMarkovClustering, seed);
}

const Distribution kDistributions[] = {
    {"uniform", GoldenUniform},
    {"zipf", GoldenZipf},
    {"markov", GoldenMarkov},
};

std::string SanitizedName(std::string_view codec_name) {
  std::string out;
  for (char c : codec_name) {
    if (c == '*') {
      out += 'S';
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
               c == '-') {
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

std::string GoldenPath(const Codec& codec, const char* dist) {
  return std::string(INTCOMP_GOLDEN_DIR) + "/" + SanitizedName(codec.Name()) +
         "_" + dist + ".bin";
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

bool WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out.flush());
}

class GoldenImageTest : public ::testing::TestWithParam<const Codec*> {};

TEST_P(GoldenImageTest, SerializedImagesMatchCommittedVectors) {
  const Codec& codec = *GetParam();
  for (size_t d = 0; d < std::size(kDistributions); ++d) {
    const Distribution& dist = kDistributions[d];
    SCOPED_TRACE(dist.name);
    // Seed is a fixed function of the distribution slot only, so vectors
    // are stable across codec-list reorderings.
    const std::vector<uint32_t> list = dist.generate(4242 + d);
    const auto set = codec.Encode(list, kDomain);
    std::vector<uint8_t> image;
    codec.Serialize(*set, &image);
    ASSERT_FALSE(image.empty());

    const std::string path = GoldenPath(codec, dist.name);
    if (g_regen) {
      ASSERT_TRUE(WriteFileBytes(path, image)) << "cannot write " << path;
    }
    std::vector<uint8_t> golden;
    ASSERT_TRUE(ReadFileBytes(path, &golden))
        << "missing golden vector " << path
        << " — run ./tests/golden_image_test --regen-golden and commit "
           "tests/data/golden/";
    // Byte-exact wire-format pin.
    ASSERT_EQ(golden.size(), image.size()) << "serialized size drifted";
    ASSERT_TRUE(std::memcmp(golden.data(), image.data(), image.size()) == 0)
        << "serialized image drifted from " << path
        << " — if the format change is intentional, regenerate with "
           "--regen-golden";

    // The committed image must stay readable through the untrusted path.
    auto restored = codec.DeserializeChecked(golden, kDomain);
    ASSERT_TRUE(restored.ok()) << restored.status().message();
    std::vector<uint32_t> decoded;
    codec.Decode(**restored, &decoded);
    EXPECT_EQ(decoded, list);
  }
}

std::string CodecName(const ::testing::TestParamInfo<const Codec*>& info) {
  return SanitizedName(info.param->Name());
}

std::vector<const Codec*> AllPlusExtensions() {
  // Shared roster (core/registry.h): paper methods + extensions, so this
  // suite can never drift from the other differential suites.
  return {AllCodecsWithExtensions().begin(), AllCodecsWithExtensions().end()};
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, GoldenImageTest,
                         ::testing::ValuesIn(AllPlusExtensions()), CodecName);

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--regen-golden") == 0) {
      intcomp::g_regen = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
