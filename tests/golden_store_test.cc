// Golden container-image regression vectors: one committed container file
// per pinned codec under tests/data/golden_store/. The test rebuilds the
// fixed index, streams it through the writer, and byte-compares against
// the committed file — any accidental change to the container layout
// (header fields, section order, alignment, CRC placement) fails loudly.
// The committed file is then round-tripped through the real mmap path
// (MappedIndex::Open on the committed path) to prove old persisted
// containers stay readable and query-identical.
//
// Also pins the format-evolution rules of format.h:
//   * a minor version bump stays readable,
//   * an unknown major version is rejected,
//   * unknown trailing sections are skipped.
//
// When a layout change is INTENTIONAL, regenerate and commit:
//
//   ./tests/golden_store_test --regen-golden
//
// The generator inputs are fixed constants on purpose — golden data must
// not depend on INTCOMP_TEST_SEED (seeds here bypass TestSeed()).

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "core/query.h"
#include "core/registry.h"
#include "engine/thread_pool.h"
#include "service/sharded_index.h"
#include "storage/format.h"
#include "storage/index_writer.h"
#include "storage/mapped_index.h"
#include "test_util.h"

namespace intcomp {
namespace {

#ifndef INTCOMP_GOLDEN_STORE_DIR
#error "build must define INTCOMP_GOLDEN_STORE_DIR (see tests/CMakeLists.txt)"
#endif

using storage::MappedIndex;

bool g_regen = false;

constexpr uint64_t kRows = 2000;
constexpr size_t kNumLists = 4;
constexpr size_t kShards = 3;

// Layout drift in any codec family should trip at least one pin.
const char* const kPinnedCodecs[] = {"WAH", "Roaring", "List", "VB"};

std::vector<std::vector<uint32_t>> GoldenLists() {
  std::vector<std::vector<uint32_t>> lists;
  for (size_t i = 0; i < kNumLists; ++i) {
    lists.push_back(RandomSortedList(80 + 240 * i, kRows, 31500 + i));
  }
  return lists;
}

ShardedIndex GoldenIndex(const Codec& codec) {
  return ShardedIndex::Build(codec, GoldenLists(), kRows, kShards);
}

std::string GoldenPath(const Codec& codec) {
  return std::string(INTCOMP_GOLDEN_STORE_DIR) + "/" +
         std::string(codec.Name()) + "_store.bin";
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

bool WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out.flush());
}

std::vector<uint32_t> QueryRows(const IndexSnapshot& index,
                                const QueryPlan& plan) {
  ThreadPool pool(2);
  IndexServiceOptions options;
  options.cache_enabled = false;
  IndexService service(&index, &pool, options);
  std::vector<uint32_t> rows;
  EXPECT_TRUE(service.Query(plan, &rows).ok());
  return rows;
}

QueryPlan BatteryPlan() {
  return QueryPlan::Or(
      {QueryPlan::And({QueryPlan::Leaf(1), QueryPlan::Leaf(3)}),
       QueryPlan::Leaf(0)});
}

class GoldenStoreTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenStoreTest, ContainerBytesMatchCommittedFileAndStayReadable) {
  const Codec& codec = *FindCodec(GetParam());
  const ShardedIndex index = GoldenIndex(codec);
  std::vector<uint8_t> image;
  ASSERT_TRUE(storage::WriteIndexImage(index, &image).ok());
  ASSERT_FALSE(image.empty());

  const std::string path = GoldenPath(codec);
  if (g_regen) {
    ASSERT_TRUE(WriteFileBytes(path, image)) << "cannot write " << path;
  }
  std::vector<uint8_t> golden;
  ASSERT_TRUE(ReadFileBytes(path, &golden))
      << "missing golden container " << path
      << " — run ./tests/golden_store_test --regen-golden and commit "
         "tests/data/golden_store/";
  ASSERT_EQ(golden.size(), image.size()) << "container size drifted";
  ASSERT_TRUE(std::memcmp(golden.data(), image.data(), image.size()) == 0)
      << "container bytes drifted from " << path
      << " — if the layout change is intentional, regenerate with "
         "--regen-golden";

  // The committed container must stay servable through the real mmap path,
  // bit-identically to the freshly built in-memory index.
  auto mapped = MappedIndex::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  const QueryPlan plan = BatteryPlan();
  EXPECT_EQ(QueryRows(**mapped, plan), QueryRows(index, plan));
}

INSTANTIATE_TEST_SUITE_P(PinnedCodecs, GoldenStoreTest,
                         ::testing::ValuesIn(kPinnedCodecs),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// ------------------------------------------------------ format evolution

// Patches the header's version fields and recomputes the header CRC so
// only the version check can reject the file.
std::vector<uint8_t> WithVersion(std::vector<uint8_t> image, uint16_t major,
                                 uint16_t minor) {
  std::memcpy(image.data() + 8, &major, 2);
  std::memcpy(image.data() + 10, &minor, 2);
  const uint32_t crc = Crc32Of({image.data(), storage::kHeaderCrcOffset});
  std::memcpy(image.data() + storage::kHeaderCrcOffset, &crc, 4);
  return image;
}

TEST(StoreFormatSkewTest, MinorVersionBumpStaysReadable) {
  const Codec& codec = *FindCodec("WAH");
  const ShardedIndex index = GoldenIndex(codec);
  std::vector<uint8_t> image;
  ASSERT_TRUE(storage::WriteIndexImage(index, &image).ok());

  const auto newer_minor =
      WithVersion(image, storage::kVersionMajor, storage::kVersionMinor + 7);
  auto mapped = MappedIndex::OpenBorrowed(newer_minor);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  const QueryPlan plan = BatteryPlan();
  EXPECT_EQ(QueryRows(**mapped, plan), QueryRows(index, plan));
}

TEST(StoreFormatSkewTest, UnknownMajorVersionIsRejected) {
  const Codec& codec = *FindCodec("WAH");
  std::vector<uint8_t> image;
  ASSERT_TRUE(storage::WriteIndexImage(GoldenIndex(codec), &image).ok());

  const auto newer_major =
      WithVersion(image, storage::kVersionMajor + 1, storage::kVersionMinor);
  auto mapped = MappedIndex::OpenBorrowed(newer_major);
  ASSERT_FALSE(mapped.ok());
  // Rejected for the version, not some incidental parse failure.
  EXPECT_NE(mapped.status().message().find("major"), std::string::npos)
      << mapped.status().message();
}

TEST(StoreFormatSkewTest, UnknownTrailingSectionsAreSkipped) {
  const Codec& codec = *FindCodec("Roaring");
  const ShardedIndex index = GoldenIndex(codec);
  std::vector<uint8_t> image;
  {
    storage::VectorSink sink(&image);
    storage::IndexWriter writer(&sink);
    ASSERT_TRUE(writer.WriteShardedIndex(index).ok());
    // A future writer appends sections this reader has never heard of.
    const std::vector<uint8_t> blob_a(123, 0xAB);
    const std::vector<uint8_t> blob_b(9, 0x01);
    ASSERT_TRUE(
        writer.AppendOpaqueSection(storage::kFirstUnassignedSectionId, blob_a)
            .ok());
    ASSERT_TRUE(
        writer
            .AppendOpaqueSection(storage::kFirstUnassignedSectionId + 1, blob_b)
            .ok());
    ASSERT_TRUE(writer.Finalize().ok());
  }
  auto mapped = MappedIndex::OpenBorrowed(image);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  const QueryPlan plan = BatteryPlan();
  EXPECT_EQ(QueryRows(**mapped, plan), QueryRows(index, plan));
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--regen-golden") == 0) {
      intcomp::g_regen = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
