// Tests for the index layer: BitmapIndex (database scenario, App. A.2) and
// InvertedIndex (IR scenario, App. A.1).

#include <cstdint>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "core/registry.h"
#include "index/bitmap_index.h"
#include "index/inverted_index.h"
#include "test_util.h"

namespace intcomp {
namespace {

class BitmapIndexTest : public ::testing::TestWithParam<const Codec*> {};

TEST_P(BitmapIndexTest, EqInRangeMatchReference) {
  const Codec& codec = *GetParam();
  const uint32_t cardinality = 7;
  const size_t rows = 20000;
  Prng rng(5);
  std::vector<uint32_t> column(rows);
  std::vector<std::vector<uint32_t>> expected(cardinality);
  for (size_t r = 0; r < rows; ++r) {
    column[r] = static_cast<uint32_t>(rng.NextBounded(cardinality));
    expected[column[r]].push_back(static_cast<uint32_t>(r));
  }
  auto index = BitmapIndex::Build(codec, column, cardinality);
  EXPECT_EQ(index.Cardinality(), cardinality);
  EXPECT_EQ(index.NumRows(), rows);
  EXPECT_GT(index.SizeInBytes(), 0u);

  std::vector<uint32_t> got;
  for (uint32_t c = 0; c < cardinality; ++c) {
    index.Eq(c, &got);
    EXPECT_EQ(got, expected[c]) << "code " << c;
    EXPECT_EQ(index.SetFor(c)->Cardinality(), expected[c].size());
  }

  // IN (2, 5) == union.
  const uint32_t in_codes[] = {2, 5};
  index.In(in_codes, &got);
  EXPECT_EQ(got, RefUnion(expected[2], expected[5]));

  // Range [1, 3] == union of 1,2,3.
  index.Range(1, 3, &got);
  auto want = RefUnion(RefUnion(expected[1], expected[2]), expected[3]);
  EXPECT_EQ(got, want);

  // Range clamped at the top code.
  index.Range(cardinality - 1, cardinality + 10, &got);
  EXPECT_EQ(got, expected[cardinality - 1]);

  // Conjunction: rows with code 1 among the rows with code-in-{1,2}.
  index.In(std::vector<uint32_t>{1, 2}, &got);
  std::vector<uint32_t> conj;
  index.EqAndFilter(1, got, &conj);
  EXPECT_EQ(conj, expected[1]);
}

TEST_P(BitmapIndexTest, EmptyValueCode) {
  const Codec& codec = *GetParam();
  // Code 1 never occurs.
  std::vector<uint32_t> column = {0, 2, 0, 2, 2};
  auto index = BitmapIndex::Build(codec, column, 3);
  std::vector<uint32_t> got;
  index.Eq(1, &got);
  EXPECT_TRUE(got.empty());
  index.Eq(2, &got);
  EXPECT_EQ(got, (std::vector<uint32_t>{1, 3, 4}));
}

INSTANTIATE_TEST_SUITE_P(Codecs, BitmapIndexTest,
                         ::testing::Values(FindCodec("Roaring"),
                                           FindCodec("WAH"),
                                           FindCodec("SIMDPforDelta*"),
                                           FindCodec("Hybrid")),
                         [](const auto& info) {
                           std::string n(info.param->Name());
                           for (char& c : n) {
                             if (c == '*') c = 'S';
                           }
                           return n;
                         });

TEST(InvertedIndexTest, BuildAndQuery) {
  InvertedIndex index(*FindCodec("Roaring"));
  using sv = std::string_view;
  const std::vector<std::vector<sv>> docs = {
      {"bitmap", "compression", "wah"},
      {"inverted", "list", "compression"},
      {"bitmap", "inverted", "compression", "roaring"},
      {"roaring", "bitmap"},
      {"compression"},
  };
  for (uint32_t d = 0; d < docs.size(); ++d) {
    index.AddDocument(d, docs[d]);
  }
  index.Finalize();
  EXPECT_EQ(index.NumDocuments(), docs.size());
  EXPECT_EQ(index.NumTerms(), 6u);
  EXPECT_EQ(index.DocumentFrequency("compression"), 4u);
  EXPECT_EQ(index.DocumentFrequency("nosuchterm"), 0u);
  EXPECT_GT(index.SizeInBytes(), 0u);

  std::vector<uint32_t> result;
  const sv q1[] = {sv("bitmap"), sv("compression")};
  EXPECT_TRUE(index.Conjunctive(q1, &result));
  EXPECT_EQ(result, (std::vector<uint32_t>{0, 2}));

  const sv q2[] = {sv("bitmap"), sv("nosuchterm")};
  EXPECT_FALSE(index.Conjunctive(q2, &result));
  EXPECT_TRUE(result.empty());

  const sv q3[] = {sv("wah"), sv("roaring")};
  index.Disjunctive(q3, &result);
  EXPECT_EQ(result, (std::vector<uint32_t>{0, 2, 3}));

  // Unknown terms are ignored in disjunction.
  const sv q4[] = {sv("wah"), sv("nosuchterm")};
  index.Disjunctive(q4, &result);
  EXPECT_EQ(result, (std::vector<uint32_t>{0}));
}

TEST(InvertedIndexTest, DuplicateTermsInDocument) {
  InvertedIndex index(*FindCodec("VB"));
  using sv = std::string_view;
  const sv terms[] = {sv("a"), sv("a"), sv("b"), sv("a")};
  index.AddDocument(0, terms);
  index.AddDocument(3, terms);
  index.Finalize();
  EXPECT_EQ(index.DocumentFrequency("a"), 2u);
  std::vector<uint32_t> result;
  const sv q[] = {sv("a"), sv("b")};
  EXPECT_TRUE(index.Conjunctive(q, &result));
  EXPECT_EQ(result, (std::vector<uint32_t>{0, 3}));
}

TEST(InvertedIndexTest, TopKQuery) {
  InvertedIndex index(*FindCodec("SIMDBP128*"));
  using sv = std::string_view;
  Prng rng(9);
  const sv both[] = {sv("x"), sv("y")};
  const sv only_x[] = {sv("x")};
  std::vector<uint32_t> both_docs;
  for (uint32_t d = 0; d < 5000; ++d) {
    if (rng.NextBounded(3) == 0) {
      index.AddDocument(d, both);
      both_docs.push_back(d);
    } else {
      index.AddDocument(d, only_x);
    }
  }
  index.Finalize();
  // Score = doc id: top-5 must be the 5 largest docs containing both terms.
  auto top = index.TopKQuery(both, 5, [](uint32_t d) { return double(d); });
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(top[i].doc, both_docs[both_docs.size() - 1 - i]);
  }
  // Unknown term: empty result.
  const sv unknown[] = {sv("x"), sv("zzz")};
  EXPECT_TRUE(index.TopKQuery(unknown, 3, [](uint32_t) { return 0.0; }).empty());
}

}  // namespace
}  // namespace intcomp
