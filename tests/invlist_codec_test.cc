// Structural tests for the inverted-list codecs: block formats, selector
// tables, exception machinery, escapes, and PEF container choice.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "invlist/blocked_list.h"
#include "invlist/groupvb.h"
#include "invlist/newpfordelta.h"
#include "invlist/optpfordelta.h"
#include "invlist/pef.h"
#include "invlist/pfordelta.h"
#include "invlist/plain_list.h"
#include "invlist/simdbp128.h"
#include "invlist/simdpfordelta.h"
#include "invlist/simple16.h"
#include "invlist/simple8b.h"
#include "invlist/simple9.h"
#include "invlist/vb.h"
#include "test_util.h"

namespace intcomp {
namespace {

template <typename Traits>
std::vector<uint32_t> BlockRoundTrip(const std::vector<uint32_t>& gaps) {
  std::vector<uint8_t> data;
  Traits::EncodeBlock(gaps.data(), gaps.size(), &data);
  data.resize(data.size() + 16);  // slack, as the framework guarantees
  std::vector<uint32_t> out(std::max<size_t>(gaps.size(), 128));
  Traits::DecodeBlock(data.data(), gaps.size(), out.data());
  out.resize(gaps.size());
  return out;
}

std::vector<uint32_t> RandomGaps(size_t n, uint32_t max_gap, uint64_t seed) {
  Prng rng(seed);
  std::vector<uint32_t> gaps(n);
  for (auto& g : gaps) g = 1 + static_cast<uint32_t>(rng.NextBounded(max_gap));
  return gaps;
}

// --- VB / GroupVB -----------------------------------------------------------

TEST(VbBlockTest, MultiByteBoundaries) {
  std::vector<uint32_t> gaps = {1, 127, 128, 16383, 16384, 2097152, ~0u};
  EXPECT_EQ(BlockRoundTrip<VbTraits>(gaps), gaps);
}

TEST(GroupVbBlockTest, HeaderPacksFourLengths) {
  std::vector<uint32_t> gaps = {5, 300, 70000, 16777216};  // 1,2,3,4 bytes
  std::vector<uint8_t> data;
  GroupVbTraits::EncodeBlock(gaps.data(), gaps.size(), &data);
  ASSERT_EQ(data.size(), 1u + 1 + 2 + 3 + 4);
  EXPECT_EQ(data[0], 0b11100100);  // lengths-1 = 0,1,2,3 in 2-bit fields
}

TEST(GroupVbBlockTest, PartialTailGroup) {
  std::vector<uint32_t> gaps = {1, 2, 3, 4, 5, 6};  // 4 + 2 tail
  EXPECT_EQ(BlockRoundTrip<GroupVbTraits>(gaps), gaps);
}

// --- Simple family ----------------------------------------------------------

TEST(Simple9BlockTest, DensePacking) {
  // 28 one-bit values must fit one word (selector 0).
  std::vector<uint32_t> gaps(28, 1);
  std::vector<uint8_t> data;
  Simple9Traits::EncodeBlock(gaps.data(), gaps.size(), &data);
  EXPECT_EQ(data.size(), 4u);
  uint32_t word;
  std::memcpy(&word, data.data(), 4);
  EXPECT_EQ(word >> 28, 0u);
}

TEST(Simple9BlockTest, EscapeForHugeValues) {
  std::vector<uint32_t> gaps = {1u << 28, ~0u, 3};
  EXPECT_EQ(BlockRoundTrip<Simple9Traits>(gaps), gaps);
}

TEST(Simple16BlockTest, MixedWidthCases) {
  // 7 two-bit values then 14 one-bit values: selector 1 packs all 21.
  std::vector<uint32_t> gaps;
  for (int i = 0; i < 7; ++i) gaps.push_back(3);
  for (int i = 0; i < 14; ++i) gaps.push_back(1);
  std::vector<uint8_t> data;
  Simple16Traits::EncodeBlock(gaps.data(), gaps.size(), &data);
  EXPECT_EQ(data.size(), 4u);
  uint32_t word;
  std::memcpy(&word, data.data(), 4);
  EXPECT_EQ(word >> 28, 1u);
}

TEST(Simple16BlockTest, EscapeIncludesMarkerValueItself) {
  // The escape threshold value must itself be escaped and round-trip.
  std::vector<uint32_t> gaps = {(1u << 28) - 1, (1u << 28), ~0u, 7};
  EXPECT_EQ(BlockRoundTrip<Simple16Traits>(gaps), gaps);
}

TEST(Simple16ArrayTest, MeasureMatchesEncode) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto vals = RandomGaps(100, seed == 1 ? 3 : (seed == 2 ? 1000 : ~0u), seed);
    std::vector<uint8_t> enc;
    Simple16EncodeArray(vals.data(), vals.size(), &enc);
    EXPECT_EQ(Simple16MeasureArray(vals.data(), vals.size()), enc.size());
    std::vector<uint32_t> dec(vals.size());
    size_t consumed = Simple16DecodeArray(enc.data(), vals.size(), dec.data());
    EXPECT_EQ(consumed, enc.size());
    EXPECT_EQ(dec, vals);
  }
}

TEST(Simple8bBlockTest, RunOf120OnesUsesRleSelector) {
  std::vector<uint32_t> gaps(120, 1);
  std::vector<uint8_t> data;
  Simple8bTraits::EncodeBlock(gaps.data(), gaps.size(), &data);
  EXPECT_EQ(data.size(), 8u);  // one 64-bit codeword
  uint64_t word;
  std::memcpy(&word, data.data(), 8);
  EXPECT_EQ(word >> 60, 1u);
}

TEST(Simple8bBlockTest, SixtyBitValues) {
  std::vector<uint32_t> gaps = {~0u, 1, ~0u};
  EXPECT_EQ(BlockRoundTrip<Simple8bTraits>(gaps), gaps);
}

// --- PforDelta family --------------------------------------------------------

TEST(PforDeltaBlockTest, NinetyPercentRuleProducesExceptions) {
  // 116 small values (exactly 90%) and 12 large ones: b stays small, the
  // large values become exceptions.
  std::vector<uint32_t> gaps(128, 3);
  for (int i = 0; i < 12; ++i) gaps[i] = 1u << 20;  // adjacent: no forced exc
  std::vector<uint8_t> data;
  PforDeltaTraits::EncodeBlock(gaps.data(), gaps.size(), &data);
  EXPECT_EQ(data[0], 2u);   // b = 2 bits covers the 3s
  EXPECT_EQ(data[1], 12u);  // 12 exceptions
  EXPECT_EQ(BlockRoundTrip<PforDeltaTraits>(gaps), gaps);
}

TEST(PforDeltaBlockTest, ForcedExceptionsWhenLinksOverflow) {
  // Two exceptions 100 slots apart with b = 1: links hold distances up to
  // 2^1, so forced exceptions are inserted between them.
  std::vector<uint32_t> gaps(128, 1);
  gaps[5] = 1u << 25;
  gaps[105] = 1u << 25;
  std::vector<uint8_t> data;
  PforDeltaTraits::EncodeBlock(gaps.data(), gaps.size(), &data);
  EXPECT_EQ(data[0], 1u);
  EXPECT_GT(data[1], 2u);  // forced exceptions added
  EXPECT_EQ(BlockRoundTrip<PforDeltaTraits>(gaps), gaps);
}

TEST(PforDeltaStarBlockTest, NeverHasExceptions) {
  for (uint64_t seed : {10u, 11u, 12u}) {
    auto gaps = RandomGaps(128, ~0u - 1, seed);
    std::vector<uint8_t> data;
    PforDeltaStarTraits::EncodeBlock(gaps.data(), gaps.size(), &data);
    EXPECT_EQ(data[1], 0u) << "PforDelta* must not emit exceptions";
    EXPECT_EQ(BlockRoundTrip<PforDeltaStarTraits>(gaps), gaps);
  }
}

TEST(NewPforDeltaBlockTest, ExceptionArraysRoundTrip) {
  std::vector<uint32_t> gaps(128, 7);
  gaps[0] = ~0u;
  gaps[64] = 1u << 30;
  gaps[127] = 1u << 29;
  EXPECT_EQ(BlockRoundTrip<NewPforDeltaTraits>(gaps), gaps);
}

TEST(OptPforDeltaBlockTest, NeverLargerThanNewPforDelta) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Prng rng(seed);
    std::vector<uint32_t> gaps(128);
    for (auto& g : gaps) {
      // Heavy-tailed gaps to make the width choice interesting.
      g = 1 + static_cast<uint32_t>(
                  rng.NextBounded(uint64_t{1} << (3 + rng.NextBounded(27))));
    }
    std::vector<uint8_t> np, op;
    NewPforDeltaTraits::EncodeBlock(gaps.data(), gaps.size(), &np);
    OptPforDeltaTraits::EncodeBlock(gaps.data(), gaps.size(), &op);
    EXPECT_LE(op.size(), np.size()) << "seed " << seed;
    EXPECT_EQ(BlockRoundTrip<OptPforDeltaTraits>(gaps), gaps);
  }
}

// --- SIMD codecs --------------------------------------------------------------

TEST(SimdPforDeltaBlockTest, ExceptionsPatchCorrectly) {
  std::vector<uint32_t> gaps(128, 9);
  gaps[3] = 1u << 27;
  gaps[77] = ~0u;
  EXPECT_EQ(BlockRoundTrip<SimdPforDeltaTraits>(gaps), gaps);
}

TEST(SimdPforDeltaStarBlockTest, FullWidthNoExceptions) {
  auto gaps = RandomGaps(128, 1u << 30, 5);
  std::vector<uint8_t> data;
  SimdPforDeltaStarTraits::EncodeBlock(gaps.data(), gaps.size(), &data);
  EXPECT_EQ(data[1], 0u);
  EXPECT_EQ(BlockRoundTrip<SimdPforDeltaStarTraits>(gaps), gaps);
}

TEST(SimdBp128BlockTest, WidthIsBlockMax) {
  std::vector<uint32_t> gaps(128, 1);
  gaps[100] = 255;  // forces b = 8
  std::vector<uint8_t> data;
  SimdBp128Traits::EncodeBlock(gaps.data(), gaps.size(), &data);
  EXPECT_EQ(data[0], 8u);
  EXPECT_EQ(data.size(), 1u + 8u * 16u);
  EXPECT_EQ(BlockRoundTrip<SimdBp128Traits>(gaps), gaps);
}

TEST(SimdBp128StarTest, FrameOfReferenceNeedsNoPrefixSum) {
  // The * variant stores values - first; verify the compressed block for a
  // dense run uses tiny widths even though absolute values are large.
  SimdBp128StarCodec codec;
  std::vector<uint32_t> values(256);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1000000000u + static_cast<uint32_t>(i);
  }
  auto set = codec.Encode(values, uint64_t{1} << 32);
  // Two blocks, each [b=8][16*8 bytes] at most (offsets 0..127 need 7 bits).
  const auto& s = static_cast<const BlockedSet<SimdBp128StarTraits>&>(*set);
  EXPECT_EQ(s.data[s.skip_offset[0]], 7u);
  std::vector<uint32_t> decoded;
  codec.Decode(*set, &decoded);
  EXPECT_EQ(decoded, values);
}

// --- Blocked framework ---------------------------------------------------------

TEST(BlockedListTest, SkipPointersPerBlock) {
  VbCodec codec;
  auto values = RandomSortedList(1000, 1 << 22, 77);
  auto set = codec.Encode(values, 1 << 22);
  const auto& s = static_cast<const BlockedSet<VbTraits>&>(*set);
  ASSERT_EQ(s.skip_first.size(), (1000 + 127) / 128);
  for (size_t b = 0; b < s.skip_first.size(); ++b) {
    EXPECT_EQ(s.skip_first[b], values[b * 128]);
  }
  // Size accounting includes 8 bytes per skip pointer.
  EXPECT_EQ(set->SizeInBytes(), s.data.size() + s.skip_first.size() * 8);
}

TEST(BlockedListTest, CursorNextGeq) {
  VbCodec codec;
  auto values = RandomSortedList(5000, 1 << 20, 88);
  auto set = codec.Encode(values, 1 << 20);
  const auto& s = static_cast<const BlockedSet<VbTraits>&>(*set);
  BlockedCursor<VbTraits> cursor(s);
  uint32_t v;
  // Before the first element.
  ASSERT_TRUE(cursor.NextGEQ(0, &v));
  EXPECT_EQ(v, values[0]);
  // Exact hits and between-value targets, ascending.
  for (size_t i = 100; i < values.size(); i += 500) {
    ASSERT_TRUE(cursor.NextGEQ(values[i], &v));
    EXPECT_EQ(v, values[i]);
    if (values[i] + 1 < values[i + 1]) {
      ASSERT_TRUE(cursor.NextGEQ(values[i] + 1, &v));
      EXPECT_EQ(v, values[i + 1]);
    }
  }
  // Past the end.
  EXPECT_FALSE(cursor.NextGEQ(values.back() + 1, &v));
}

TEST(BlockedListTest, NoSkipVariantMatchesResults) {
  VbCodec with_skips(true);
  VbCodec no_skips(false);
  auto a = RandomSortedList(300, 1 << 20, 1);
  auto b = RandomSortedList(40000, 1 << 20, 2);
  auto sa1 = with_skips.Encode(a, 1 << 20);
  auto sb1 = with_skips.Encode(b, 1 << 20);
  auto sa2 = no_skips.Encode(a, 1 << 20);
  auto sb2 = no_skips.Encode(b, 1 << 20);
  std::vector<uint32_t> r1, r2;
  with_skips.Intersect(*sa1, *sb1, &r1);
  no_skips.Intersect(*sa2, *sb2, &r2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, RefIntersect(a, b));
  // The no-skip encoding is smaller (skip pointers excluded from size).
  EXPECT_LT(sb2->SizeInBytes(), sb1->SizeInBytes());
}

// Regression for Fig. 7's no-skip mode: Serialize used to write the skip
// arrays that SizeInBytes excluded, so the measured compression ratio and
// the actual image disagreed. The framing is fixed (count u64 + flag u8 +
// one u64 length prefix per serialized vector), so the agreement can be
// checked exactly for both payload families.
TEST(BlockedListTest, NoSkipSerializationMatchesSizeAccounting) {
  const auto values = RandomSortedList(5000, 1 << 22, 93);
  const auto probe = RandomSortedList(400, 1 << 22, 94);

  // Delta-based traits (VB): a no-skip image carries the payload only;
  // both skip arrays are rebuilt on load.
  {
    VbCodec no_skips(false);
    auto set = no_skips.Encode(values, 1 << 22);
    std::vector<uint8_t> image;
    no_skips.Serialize(*set, &image);
    EXPECT_EQ(image.size(), 17 + set->SizeInBytes());

    auto restored = no_skips.Deserialize(image.data(), image.size());
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->SizeInBytes(), set->SizeInBytes());
    std::vector<uint32_t> decoded;
    no_skips.Decode(*restored, &decoded);
    EXPECT_EQ(decoded, values);
    // The rebuilt skip arrays must actually work (NextGEQ seeks with them).
    std::vector<uint32_t> out;
    no_skips.IntersectWithList(*restored, probe, &out);
    EXPECT_EQ(out, RefIntersect(values, probe));
  }

  // Frame-of-reference traits (SIMDBP128*): blocks are rebased to their
  // first value, so skip_first is payload and must survive the image; only
  // the byte offsets are rebuilt.
  {
    SimdBp128StarCodec no_skips(false);
    auto set = no_skips.Encode(values, 1 << 22);
    std::vector<uint8_t> image;
    no_skips.Serialize(*set, &image);
    EXPECT_EQ(image.size(), 17 + 8 + set->SizeInBytes());

    auto restored = no_skips.Deserialize(image.data(), image.size());
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->SizeInBytes(), set->SizeInBytes());
    std::vector<uint32_t> decoded;
    no_skips.Decode(*restored, &decoded);
    EXPECT_EQ(decoded, values);
    std::vector<uint32_t> out;
    no_skips.IntersectWithList(*restored, probe, &out);
    EXPECT_EQ(out, RefIntersect(values, probe));
  }

  // The no-skip image must be strictly smaller than the with-skips image
  // of the same list, by exactly the skip metadata it drops.
  {
    VbCodec with(true), without(false);
    auto sw = with.Encode(values, 1 << 22);
    auto so = without.Encode(values, 1 << 22);
    std::vector<uint8_t> iw, io;
    with.Serialize(*sw, &iw);
    without.Serialize(*so, &io);
    const size_t nblocks = (values.size() + 127) / 128;
    EXPECT_EQ(iw.size() - io.size(), 2 * (8 + 4 * nblocks));
  }
}

TEST(BlockedListTest, GallopToBlockFindsLastLeq) {
  std::vector<uint32_t> firsts = {0, 100, 200, 300, 1000, 5000};
  EXPECT_EQ(GallopToBlock(firsts, 0, 0), 0u);
  EXPECT_EQ(GallopToBlock(firsts, 0, 99), 0u);
  EXPECT_EQ(GallopToBlock(firsts, 0, 100), 1u);
  EXPECT_EQ(GallopToBlock(firsts, 0, 999), 3u);
  EXPECT_EQ(GallopToBlock(firsts, 2, 1 << 30), 5u);
  EXPECT_EQ(GallopToBlock(firsts, 3, 300), 3u);
}

TEST(BlockedListTest, AlternateBlockSizes) {
  // The block-size ablation instantiations must satisfy the same
  // invariants as the default 128.
  auto values = RandomSortedList(5000, 1 << 22, 91);
  auto probe = RandomSortedList(700, 1 << 22, 92);
  auto RunAt = [&](auto codec) {
    auto set = codec.Encode(values, 1 << 22);
    std::vector<uint32_t> decoded;
    codec.Decode(*set, &decoded);
    EXPECT_EQ(decoded, values);
    std::vector<uint32_t> out;
    codec.IntersectWithList(*set, probe, &out);
    EXPECT_EQ(out, RefIntersect(values, probe));
    return set->SizeInBytes();
  };
  const size_t s16 = RunAt(BlockedListCodec<VbTraits, 16>());
  const size_t s64 = RunAt(BlockedListCodec<VbTraits, 64>());
  const size_t s128 = RunAt(BlockedListCodec<VbTraits, 128>());
  RunAt(BlockedListCodec<PforDeltaTraits, 32>());
  // Smaller blocks carry more skip pointers.
  EXPECT_GT(s16, s64);
  EXPECT_GT(s64, s128);
}

// --- PEF -----------------------------------------------------------------------

TEST(PefTest, ChoosesContainersByShape) {
  PefCodec codec;
  // A dense run partitions into implicit-run containers.
  std::vector<uint32_t> run(256);
  for (size_t i = 0; i < run.size(); ++i) run[i] = 5000 + i;
  auto sr = codec.Encode(run, 1 << 20);
  const auto& pr = static_cast<const PefCodec::Set&>(*sr);
  ASSERT_EQ(pr.parts.size(), 2u);
  EXPECT_EQ(pr.parts[0].type, PefCodec::PartitionType::kRun);
  EXPECT_EQ(pr.data.size(), 0u);  // implicit containers store nothing

  // A moderately dense partition prefers the bitmap container.
  auto dense = RandomSortedList(128, 300, 9);
  auto sd = codec.Encode(dense, 1 << 20);
  const auto& pd = static_cast<const PefCodec::Set&>(*sd);
  EXPECT_EQ(pd.parts[0].type, PefCodec::PartitionType::kBitmap);

  // A sparse partition uses Elias-Fano.
  auto sparse = RandomSortedList(128, 1 << 20, 10);
  auto ss = codec.Encode(sparse, 1 << 20);
  const auto& ps = static_cast<const PefCodec::Set&>(*ss);
  EXPECT_EQ(ps.parts[0].type, PefCodec::PartitionType::kEliasFano);
}

TEST(PefTest, SpaceNearInformationTheoreticBound) {
  // EF uses ~2 + log2(u/n) bits per element; for 1M over 2^31 that is
  // ~13 bits/element. Allow generous slack for partition metadata.
  PefCodec codec;
  auto values = RandomSortedList(100000, uint64_t{1} << 31, 13);
  auto set = codec.Encode(values, uint64_t{1} << 31);
  const double bits_per_elem = 8.0 * set->SizeInBytes() / values.size();
  EXPECT_LT(bits_per_elem, 20.0);
  EXPECT_GT(bits_per_elem, 10.0);
}

// --- List (uncompressed) ---------------------------------------------------------

TEST(PlainListTest, GallopIntersectMatchesMerge) {
  auto small = RandomSortedList(100, 1 << 20, 31);
  auto large = RandomSortedList(50000, 1 << 20, 32);
  std::vector<uint32_t> out;
  GallopIntersect(small, large, &out);
  EXPECT_EQ(out, RefIntersect(small, large));
  GallopIntersect(large, small, &out);  // also correct when "misused"
  EXPECT_EQ(out, RefIntersect(small, large));
}

}  // namespace
}  // namespace intcomp
