// LiveIndex end-to-end tests (src/storage/live_index.h): create / update /
// query / reopen durability, WAL rotation at compaction commit, torn-tail
// recovery, transient-fault retry on reopen, validation, and result-cache
// coherence across the mutable write path. The adversarial crash campaigns
// live in recovery_fault_test.cc; these tests pin the deterministic
// behaviors down one by one.

#include "storage/live_index.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "core/query.h"
#include "core/registry.h"
#include "engine/thread_pool.h"
#include "obs/trace.h"
#include "service/sharded_index.h"
#include "test_util.h"

namespace intcomp {
namespace {

using storage::LiveIndex;
using storage::LiveIndexOptions;
using storage::LiveIndexStats;

// Fresh empty directory under the test temp root.
std::string MakeDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  for (const char* f : {LiveIndex::kIndexFile, LiveIndex::kWalFile,
                        LiveIndex::kIndexTmpFile, LiveIndex::kWalTmpFile}) {
    std::remove((dir + "/" + f).c_str());
  }
  return dir;
}

// Decodes the effective global row ids of one list straight off a snapshot
// (no service, no cache — the ground truth the service would serve).
std::vector<uint32_t> ListRows(const IndexSnapshot& snap, uint32_t list) {
  std::vector<uint32_t> out, local;
  const std::vector<size_t> leaves = {list};
  const ShardRouter& router = snap.Router();
  for (size_t s = 0; s < snap.NumShards(); ++s) {
    auto sets = snap.PlanSets(s, leaves);
    EXPECT_TRUE(sets.ok()) << sets.status().ToString();
    if (!sets.ok()) return out;
    local.clear();
    snap.codec().Decode(*sets.value()[list], &local);
    for (uint32_t r : local) {
      out.push_back(r + static_cast<uint32_t>(router.Begin(s)));
    }
  }
  return out;
}

struct BaseFixture {
  uint64_t num_rows = 1024;
  std::vector<std::vector<uint32_t>> lists;
  ShardedIndex Build(const Codec& codec, size_t shards = 2) const {
    return ShardedIndex::Build(codec, lists, num_rows, shards);
  }
};

BaseFixture MakeBase(uint64_t seed) {
  BaseFixture f;
  f.lists.push_back(RandomSortedList(150, f.num_rows, seed));
  f.lists.push_back(RandomSortedList(90, f.num_rows, seed + 1));
  f.lists.push_back(RandomSortedList(40, f.num_rows, seed + 2));
  return f;
}

TEST(LiveIndexTest, UpdatesPersistAcrossReopen) {
  const Codec& codec = *FindCodec("Roaring");
  BaseFixture f = MakeBase(TestSeed(0x11d0));
  const std::string dir = MakeDir("live_reopen");

  const std::vector<uint32_t> ins =
      RandomSortedList(30, f.num_rows, TestSeed(0x11d4));
  const std::vector<uint32_t> del(f.lists[1].begin(), f.lists[1].begin() + 20);
  {
    auto live = LiveIndex::Create(dir, f.Build(codec));
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    ASSERT_TRUE((*live)->Insert(0, ins).ok());
    ASSERT_TRUE((*live)->Remove(1, del).ok());
    // Rows passed unsorted with duplicates are canonicalized.
    ASSERT_TRUE((*live)->Insert(2, std::vector<uint32_t>{9, 5, 9, 7}).ok());
    // Empty batches are accepted and change nothing.
    ASSERT_TRUE((*live)->Insert(2, std::vector<uint32_t>{}).ok());

    const LiveIndexStats stats = (*live)->Stats();
    EXPECT_EQ(stats.inserts, 2u);  // the empty batch doesn't count
    EXPECT_EQ(stats.removes, 1u);
    EXPECT_EQ(stats.wal_records, 3u);
    EXPECT_GT(stats.wal_bytes, 0u);
    EXPECT_GT(stats.wal_syncs, 0u);  // default cadence: every record
    EXPECT_EQ(stats.replayed_records, 0u);
    EXPECT_EQ(stats.dirty_lists, 3u);
    ASSERT_TRUE((*live)->Close().ok());
  }

  // Expected post-update lists.
  f.lists[0] = RefUnion(f.lists[0], ins);
  std::vector<uint32_t> kept(f.lists[1].begin() + 20, f.lists[1].end());
  f.lists[1] = kept;
  f.lists[2] = RefUnion(f.lists[2], {5, 7, 9});

  auto reopened = LiveIndex::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const LiveIndexStats stats = (*reopened)->Stats();
  EXPECT_EQ(stats.replayed_records, 3u);
  EXPECT_FALSE(stats.recovered_torn_tail);
  EXPECT_EQ(stats.dirty_lists, 3u);
  auto snap = (*reopened)->Snapshot();
  for (uint32_t l = 0; l < 3; ++l) {
    EXPECT_EQ(ListRows(*snap, l), f.lists[l]) << "list " << l;
  }
}

TEST(LiveIndexTest, CompactionRotatesTheWalAndPreservesState) {
  const Codec& codec = *FindCodec("WAH");
  BaseFixture f = MakeBase(TestSeed(0x11d8));
  const std::string dir = MakeDir("live_compact");

  const std::vector<uint32_t> ins =
      RandomSortedList(50, f.num_rows, TestSeed(0x11d9));
  const std::vector<uint32_t> post =
      RandomSortedList(25, f.num_rows, TestSeed(0x11da));
  {
    auto live = LiveIndex::Create(dir, f.Build(codec));
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE((*live)->Insert(0, ins).ok());
    ASSERT_TRUE((*live)->Compact().ok());

    LiveIndexStats stats = (*live)->Stats();
    EXPECT_EQ(stats.compactions, 1u);
    EXPECT_EQ(stats.compaction_failures, 0u);
    EXPECT_EQ(stats.delta_rows, 0u);  // all folded into the new base
    EXPECT_EQ(stats.dirty_lists, 0u);

    // Updates keep working on the rotated WAL.
    ASSERT_TRUE((*live)->Insert(1, post).ok());
    ASSERT_TRUE((*live)->Close().ok());
  }

  f.lists[0] = RefUnion(f.lists[0], ins);
  f.lists[1] = RefUnion(f.lists[1], post);

  auto reopened = LiveIndex::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const LiveIndexStats stats = (*reopened)->Stats();
  // The rotated WAL holds the checkpoint marker + the one post-compaction
  // insert; the pre-compaction insert lives in the container now.
  EXPECT_EQ(stats.replayed_records, 2u);
  EXPECT_EQ(stats.dirty_lists, 1u);
  auto snap = (*reopened)->Snapshot();
  for (uint32_t l = 0; l < 3; ++l) {
    EXPECT_EQ(ListRows(*snap, l), f.lists[l]) << "list " << l;
  }

  // A second compaction folds the survivor and empties the WAL again.
  ASSERT_TRUE((*reopened)->Compact().ok());
  EXPECT_EQ((*reopened)->Stats().delta_rows, 0u);
  snap = (*reopened)->Snapshot();
  for (uint32_t l = 0; l < 3; ++l) {
    EXPECT_EQ(ListRows(*snap, l), f.lists[l]) << "list " << l;
  }
}

TEST(LiveIndexTest, RejectsOutOfRangeUpdates) {
  const Codec& codec = *FindCodec("Roaring");
  const BaseFixture f = MakeBase(TestSeed(0x11e0));
  const std::string dir = MakeDir("live_validate");
  auto live = LiveIndex::Create(dir, f.Build(codec));
  ASSERT_TRUE(live.ok());

  EXPECT_EQ((*live)->Insert(3, std::vector<uint32_t>{1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*live)
                ->Insert(0, std::vector<uint32_t>{
                                static_cast<uint32_t>(f.num_rows)})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*live)->Remove(9, std::vector<uint32_t>{1}).code(),
            StatusCode::kInvalidArgument);
  // Nothing was accepted: no WAL records, no deltas.
  const LiveIndexStats stats = (*live)->Stats();
  EXPECT_EQ(stats.wal_records, 0u);
  EXPECT_EQ(stats.delta_rows, 0u);

  ASSERT_TRUE((*live)->Close().ok());
  EXPECT_FALSE((*live)->Insert(0, std::vector<uint32_t>{1}).ok());
  EXPECT_TRUE((*live)->Close().ok());  // idempotent
}

TEST(LiveIndexTest, OpenRetriesTransientMapFaults) {
  fault::ScopedDisarm disarm;
  const Codec& codec = *FindCodec("Roaring");
  const BaseFixture f = MakeBase(TestSeed(0x11e4));
  const std::string dir = MakeDir("live_map_retry");
  {
    auto live = LiveIndex::Create(dir, f.Build(codec));
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE((*live)->Close().ok());
  }
  // Two transient mmap failures: the default 4-attempt budget absorbs them.
  fault::FaultInjector::Global().ArmTransientFirst(
      2, fault::SiteBit(fault::Site::kMapOpen));
  auto live = LiveIndex::Open(dir);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  fault::FaultInjector::Global().Disarm();
  auto snap = (*live)->Snapshot();
  EXPECT_EQ(ListRows(*snap, 0), f.lists[0]);

  // Beyond the budget the open fails with the transient status.
  ASSERT_TRUE((*live)->Close().ok());
  fault::FaultInjector::Global().ArmTransientFirst(
      16, fault::SiteBit(fault::Site::kMapOpen));
  auto failed = LiveIndex::Open(dir);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
}

TEST(LiveIndexTest, TornWalTailIsRecoveredAndReported) {
  const Codec& codec = *FindCodec("Roaring");
  BaseFixture f = MakeBase(TestSeed(0x11e8));
  const std::string dir = MakeDir("live_torn");

  const std::vector<uint32_t> first =
      RandomSortedList(20, f.num_rows, TestSeed(0x11e9));
  const std::vector<uint32_t> second =
      RandomSortedList(20, f.num_rows, TestSeed(0x11ea));
  {
    auto live = LiveIndex::Create(dir, f.Build(codec));
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE((*live)->Insert(0, first).ok());
    ASSERT_TRUE((*live)->Insert(1, second).ok());
    ASSERT_TRUE((*live)->Close().ok());
  }
  // Tear the final record mid-frame, as a crash during the append would.
  const std::string wal = dir + "/" + LiveIndex::kWalFile;
  std::FILE* fp = std::fopen(wal.c_str(), "rb");
  ASSERT_NE(fp, nullptr);
  std::fseek(fp, 0, SEEK_END);
  const long size = std::ftell(fp);
  std::fclose(fp);
  ASSERT_EQ(::truncate(wal.c_str(), size - 5), 0);

  auto live = LiveIndex::Open(dir);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  const LiveIndexStats stats = (*live)->Stats();
  EXPECT_TRUE(stats.recovered_torn_tail);
  EXPECT_EQ(stats.replayed_records, 1u);  // only the first insert survived
  auto snap = (*live)->Snapshot();
  EXPECT_EQ(ListRows(*snap, 0), RefUnion(f.lists[0], first));
  EXPECT_EQ(ListRows(*snap, 1), f.lists[1]);

  // Appending after the truncated tail works and persists.
  ASSERT_TRUE((*live)->Insert(1, second).ok());
  ASSERT_TRUE((*live)->Close().ok());
  auto again = LiveIndex::Open(dir);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE((*again)->Stats().recovered_torn_tail);
  snap = (*again)->Snapshot();
  EXPECT_EQ(ListRows(*snap, 1), RefUnion(f.lists[1], second));
}

TEST(LiveIndexTest, OpenFailsCleanlyOnMissingDirectory) {
  auto live = LiveIndex::Open(::testing::TempDir() + "/live_never_created");
  EXPECT_FALSE(live.ok());
}

// A result served from the cache must never survive an update or a
// compaction that changed (or merely republished) the snapshot.
TEST(LiveIndexTest, ServiceCacheNeverServesStaleResultsAcrossUpdates) {
  const Codec& codec = *FindCodec("Roaring");
  BaseFixture f = MakeBase(TestSeed(0x11f0));
  const std::string dir = MakeDir("live_cache");
  auto live = LiveIndex::Create(dir, f.Build(codec));
  ASSERT_TRUE(live.ok());

  ThreadPool pool(2);
  IndexServiceOptions options;
  options.cache.require_second_touch = false;
  IndexService service((*live)->Snapshot(), &pool, options);
  (*live)->AttachService(&service);

  const QueryPlan plan =
      QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)});
  std::vector<uint32_t> before;
  ASSERT_TRUE(service.Query(plan, &before).ok());
  std::vector<uint32_t> hit;
  ASSERT_TRUE(service.Query(plan, &hit).ok());
  EXPECT_EQ(hit, before);
  EXPECT_GE(service.Stats().cache.hits, 1u);

  // Mutate a list the plan covers; the next query must see the new rows.
  std::vector<uint32_t> extra;
  for (uint32_t r = 0; extra.size() < 16; ++r) {
    if (!std::binary_search(before.begin(), before.end(), r)) extra.push_back(r);
  }
  ASSERT_TRUE((*live)->Insert(0, extra).ok());
  std::vector<uint32_t> after;
  ASSERT_TRUE(service.Query(plan, &after).ok());
  EXPECT_EQ(after, RefUnion(before, extra));

  // Compaction republishes; the cached post-update result must also retire.
  ASSERT_TRUE((*live)->Compact().ok());
  std::vector<uint32_t> compacted;
  ASSERT_TRUE(service.Query(plan, &compacted).ok());
  EXPECT_EQ(compacted, after);
  ASSERT_TRUE((*live)->Close().ok());
}

// CompactAsync runs the same commit on the shared pool and reports through
// the callback.
TEST(LiveIndexTest, CompactAsyncReportsCompletion) {
  const Codec& codec = *FindCodec("Roaring");
  BaseFixture f = MakeBase(TestSeed(0x11f4));
  const std::string dir = MakeDir("live_async");
  auto live = LiveIndex::Create(dir, f.Build(codec));
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(
      (*live)
          ->Insert(0, RandomSortedList(30, f.num_rows, TestSeed(0x11f5)))
          .ok());

  ThreadPool pool(2);
  std::promise<Status> done;
  (*live)->CompactAsync(&pool, [&](Status st) { done.set_value(st); });
  const Status st = done.get_future().get();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ((*live)->Stats().compactions, 1u);
  EXPECT_EQ((*live)->Stats().delta_rows, 0u);
  ASSERT_TRUE((*live)->Close().ok());
}

// The worker-side compaction span must nest under the submitting thread's
// trace (via the compact_submit anchor CompactAsync opens), not surface as
// an orphaned root in snapshots.
TEST(LiveIndexTest, CompactAsyncSpansNestUnderTheSubmittingTrace) {
  const Codec& codec = *FindCodec("Roaring");
  BaseFixture f = MakeBase(TestSeed(0x11f6));
  const std::string dir = MakeDir("live_async_trace");
  auto live = LiveIndex::Create(dir, f.Build(codec));
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(
      (*live)
          ->Insert(0, RandomSortedList(30, f.num_rows, TestSeed(0x11f7)))
          .ok());

  obs::SetTraceSampling(0);
  obs::ClearSpans();
  obs::SetTraceSeed(42);
  obs::SetTraceSampling(1);
  {
    ThreadPool pool(2);
    std::promise<Status> done;
    (*live)->CompactAsync(&pool, [&](Status st) { done.set_value(st); });
    ASSERT_TRUE(done.get_future().get().ok());
  }  // pool joined: rings quiescent
  obs::SetTraceSampling(0);

  const auto all = obs::SnapshotSpans();
  uint64_t submit_id = 0;
  for (const auto& s : all) {
    if (s.name != nullptr &&
        std::string_view(s.name) == "storage.compact_submit") {
      submit_id = s.span_id;
    }
  }
  ASSERT_NE(submit_id, 0u);
  bool found_compaction = false;
  for (const auto& s : all) {
    if (s.name != nullptr && std::string_view(s.name) == "storage.compaction") {
      found_compaction = true;
      EXPECT_EQ(s.parent_id, submit_id);
    }
  }
  EXPECT_TRUE(found_compaction);
  obs::ClearSpans();
  ASSERT_TRUE((*live)->Close().ok());
}

}  // namespace
}  // namespace intcomp
