// Metamorphic suite: set-algebra identities that must hold for every codec
// on every input distribution, independent of any reference implementation.
// Each identity is checked through BOTH evaluation paths — the direct
// serial EvaluatePlan and the sharded IndexService (1, 2, and 8 shards,
// with the result cache on, so the second round exercises cache hits):
//
//   commutativity   A∩B = B∩A, A∪B = B∪A
//   associativity   (A∩B)∩C = A∩(B∩C), same for ∪
//   distributivity  A∩(B∪C) = (A∩B)∪(A∩C)
//   idempotence     A∩A = A, A∪A = A
//   complement      A∩Aᶜ = ∅, A∪Aᶜ = [0, domain)
//   De Morgan       (A∪B)ᶜ = Aᶜ∩Bᶜ, (A∩B)ᶜ = Aᶜ∪Bᶜ
//
// Complements are materialized as ordinary input lists (the codec layer has
// no complement operator), so De Morgan is phrased over the complement
// lists: evaluate Aᶜ∩Bᶜ with the codec and compare against the
// domain-complement of the codec's own A∪B.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/thread_pool.h"
#include "service/sharded_index.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

constexpr uint64_t kDomain = 1 << 13;
constexpr size_t kN = 350;

// Leaf ids into the five input lists.
enum : size_t { kA = 0, kB = 1, kC = 2, kAc = 3, kBc = 4 };

struct Inputs {
  std::string name;
  std::vector<std::vector<uint32_t>> lists;  // A, B, C, Ac, Bc
};

std::vector<Inputs> MakeInputs() {
  const uint64_t seed = TestSeed(7);
  std::vector<Inputs> all;
  // The markov generator may overshoot the domain to reach exactly n values
  // (it walks a chain of mean density n/domain); the identities are over
  // [0, kDomain), so clamp every list to that universe.
  const auto clamp = [](std::vector<uint32_t> v) {
    while (!v.empty() && v.back() >= kDomain) v.pop_back();
    return v;
  };
  const auto add = [&](std::string name,
                       std::vector<uint32_t> a, std::vector<uint32_t> b,
                       std::vector<uint32_t> c) {
    Inputs in;
    in.name = std::move(name);
    in.lists.push_back(clamp(std::move(a)));
    in.lists.push_back(clamp(std::move(b)));
    in.lists.push_back(clamp(std::move(c)));
    in.lists.push_back(RefComplement(in.lists[kA], kDomain));
    in.lists.push_back(RefComplement(in.lists[kB], kDomain));
    all.push_back(std::move(in));
  };
  add("uniform", GenerateUniform(kN, kDomain, seed + 1),
      GenerateUniform(kN, kDomain, seed + 2),
      GenerateUniform(kN, kDomain, seed + 3));
  add("zipf", GenerateZipf(kN, kDomain, kPaperZipfSkew, seed + 4),
      GenerateZipf(kN, kDomain, kPaperZipfSkew, seed + 5),
      GenerateZipf(kN, kDomain, kPaperZipfSkew, seed + 6));
  add("markov", GenerateMarkov(kN, kDomain, kPaperMarkovClustering, seed + 7),
      GenerateMarkov(kN, kDomain, kPaperMarkovClustering, seed + 8),
      GenerateMarkov(kN, kDomain, kPaperMarkovClustering, seed + 9));
  return all;
}

using Eval = std::function<std::vector<uint32_t>(const QueryPlan&)>;

QueryPlan L(size_t i) { return QueryPlan::Leaf(i); }

// Runs the full identity battery through one evaluation path.
void CheckIdentities(const Inputs& in, const Eval& eval) {
  SCOPED_TRACE(in.name);
  // Commutativity.
  EXPECT_EQ(eval(QueryPlan::And({L(kA), L(kB)})),
            eval(QueryPlan::And({L(kB), L(kA)})));
  EXPECT_EQ(eval(QueryPlan::Or({L(kA), L(kB)})),
            eval(QueryPlan::Or({L(kB), L(kA)})));
  // Associativity.
  EXPECT_EQ(eval(QueryPlan::And({QueryPlan::And({L(kA), L(kB)}), L(kC)})),
            eval(QueryPlan::And({L(kA), QueryPlan::And({L(kB), L(kC)})})));
  EXPECT_EQ(eval(QueryPlan::Or({QueryPlan::Or({L(kA), L(kB)}), L(kC)})),
            eval(QueryPlan::Or({L(kA), QueryPlan::Or({L(kB), L(kC)})})));
  // Distributivity of ∩ over ∪.
  EXPECT_EQ(eval(QueryPlan::And({L(kA), QueryPlan::Or({L(kB), L(kC)})})),
            eval(QueryPlan::Or({QueryPlan::And({L(kA), L(kB)}),
                                QueryPlan::And({L(kA), L(kC)})})));
  // Idempotence.
  EXPECT_EQ(eval(QueryPlan::And({L(kA), L(kA)})), in.lists[kA]);
  EXPECT_EQ(eval(QueryPlan::Or({L(kA), L(kA)})), in.lists[kA]);
  // Complement laws.
  EXPECT_TRUE(eval(QueryPlan::And({L(kA), L(kAc)})).empty());
  EXPECT_EQ(eval(QueryPlan::Or({L(kA), L(kAc)})).size(), kDomain);
  // De Morgan, phrased over the materialized complement lists.
  EXPECT_EQ(RefComplement(eval(QueryPlan::Or({L(kA), L(kB)})), kDomain),
            eval(QueryPlan::And({L(kAc), L(kBc)})));
  EXPECT_EQ(RefComplement(eval(QueryPlan::And({L(kA), L(kB)})), kDomain),
            eval(QueryPlan::Or({L(kAc), L(kBc)})));
}

class MetamorphicTest : public ::testing::TestWithParam<const Codec*> {};

TEST_P(MetamorphicTest, DirectPathSatisfiesSetAlgebra) {
  const Codec& codec = *GetParam();
  for (const Inputs& in : MakeInputs()) {
    std::vector<std::unique_ptr<CompressedSet>> sets;
    std::vector<const CompressedSet*> ptrs;
    for (const auto& list : in.lists) {
      sets.push_back(codec.Encode(list, kDomain));
      ptrs.push_back(sets.back().get());
    }
    CheckIdentities(in, [&](const QueryPlan& plan) {
      return EvaluatePlan(codec, plan, ptrs);
    });
  }
}

TEST_P(MetamorphicTest, ShardedServicePathSatisfiesSetAlgebra) {
  const Codec& codec = *GetParam();
  ThreadPool pool(2);
  for (const Inputs& in : MakeInputs()) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE(shards);
      const ShardedIndex index =
          ShardedIndex::Build(codec, in.lists, kDomain, shards);
      IndexServiceOptions options;
      options.cache.require_second_touch = false;
      IndexService service(&index, &pool, options);
      const Eval eval = [&](const QueryPlan& plan) {
        std::vector<uint32_t> rows;
        EXPECT_TRUE(service.Query(plan, &rows).ok());
        return rows;
      };
      // Round 0 computes and fills the cache; round 1 re-checks every
      // identity through the cache-hit path.
      CheckIdentities(in, eval);
      CheckIdentities(in, eval);
      EXPECT_GT(service.Stats().cache.hits, 0u);
    }
  }
}

std::string CodecName(const ::testing::TestParamInfo<const Codec*>& info) {
  std::string name(info.param->Name());
  for (char& c : name) {
    if (c == '*') c = 'S';
  }
  return name;
}

std::vector<const Codec*> AllPlusExtensions() {
  // Shared roster (core/registry.h): paper methods + extensions, so this
  // suite can never drift from the other differential suites.
  return {AllCodecsWithExtensions().begin(), AllCodecsWithExtensions().end()};
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, MetamorphicTest,
                         ::testing::ValuesIn(AllPlusExtensions()), CodecName);

}  // namespace
}  // namespace intcomp
