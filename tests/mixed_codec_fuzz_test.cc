// Mixed-codec differential fuzzer (satellite of DESIGN.md §5.12).
//
// The tagged set operations (core/set_ops.h) intersect, union, and
// difference sets that live under *different* codecs — the boundary the
// planner's per-list codec choice creates inside one index. This fuzzer
// drives every bitmap×list codec pairing (plus the adaptive extensions as
// a third operand) through those ops against a sorted-vector oracle, and
// checks the metamorphic identities that catch asymmetric bugs a single
// oracle comparison can miss:
//
//   * commutativity:  A ∩ B = B ∩ A and A ∪ B = B ∪ A with the codec
//     assignment swapped along with the operands;
//   * De Morgan:      A ∩ B = ¬(¬A ∪ ¬B) with the complements encoded
//     under the *opposite* codecs;
//   * difference:     A ∖ B and B ∖ A against the oracle (asymmetric op,
//     both orders).
//
// The CI ASan+UBSan job runs this binary with a raised --fuzz-iters; the
// default keeps tier-1 ctest fast. Own main (not gtest_main) to parse the
// flag.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "core/registry.h"
#include "core/scratch.h"
#include "core/set_ops.h"
#include "test_util.h"

namespace intcomp {

int g_fuzz_iters = 6;  // iterations per bitmap×list pairing

namespace {

std::vector<uint32_t> RefDifference(const std::vector<uint32_t>& a,
                                    const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// Draws a list whose density varies iteration to iteration, so pairings hit
// both the dense regimes bitmap codecs favor and the sparse regimes list
// codecs favor.
std::vector<uint32_t> DrawList(Prng* rng, uint64_t domain) {
  const uint64_t kind = rng->NextBounded(3);
  const uint64_t max =
      kind == 0 ? domain / 2 : (kind == 1 ? domain / 16 : 64);
  const size_t n = static_cast<size_t>(1 + rng->NextBounded(max));
  return RandomSortedList(n, domain, rng->Next());
}

struct EncodedPair {
  std::unique_ptr<CompressedSet> set;
  TaggedSet tagged;
};

EncodedPair EncodeTagged(const Codec& codec,
                         const std::vector<uint32_t>& list, uint64_t domain) {
  EncodedPair p;
  p.set = codec.Encode(list, domain);
  p.tagged = {&codec, p.set.get()};
  return p;
}

void RunPairing(const Codec& bitmap_codec, const Codec& list_codec,
                uint64_t seed) {
  // Small domain keeps complements affordable for the De Morgan check.
  const uint64_t domain = 1u << 12;
  Prng rng(NoteSeed(seed));
  ScratchArena arena;
  const auto extensions = ExtensionCodecs();

  for (int iter = 0; iter < g_fuzz_iters; ++iter) {
    const auto a = DrawList(&rng, domain);
    const auto b = DrawList(&rng, domain);
    const auto ea = EncodeTagged(bitmap_codec, a, domain);
    const auto eb = EncodeTagged(list_codec, b, domain);

    const auto ref_and = RefIntersect(a, b);
    const auto ref_or = RefUnion(a, b);

    std::vector<uint32_t> out;
    IntersectTagged(ea.tagged, eb.tagged, &out);
    ASSERT_EQ(out, ref_and);
    IntersectTagged(eb.tagged, ea.tagged, &out);  // commutativity
    ASSERT_EQ(out, ref_and);

    UnionTagged(ea.tagged, eb.tagged, &out);
    ASSERT_EQ(out, ref_or);
    UnionTagged(eb.tagged, ea.tagged, &out);
    ASSERT_EQ(out, ref_or);

    DifferenceTagged(ea.tagged, eb.tagged, &out);
    ASSERT_EQ(out, RefDifference(a, b));
    DifferenceTagged(eb.tagged, ea.tagged, &out);
    ASSERT_EQ(out, RefDifference(b, a));

    // De Morgan with the families swapped: ¬A under the list codec, ¬B
    // under the bitmap codec.
    const auto not_a = EncodeTagged(list_codec, RefComplement(a, domain),
                                    domain);
    const auto not_b = EncodeTagged(bitmap_codec, RefComplement(b, domain),
                                    domain);
    std::vector<uint32_t> not_union;
    UnionTagged(not_a.tagged, not_b.tagged, &not_union);
    ASSERT_EQ(RefComplement(not_union, domain), ref_and);

    // Three-way SvS and k-way union with an adaptive third operand.
    const Codec& third =
        *extensions[static_cast<size_t>(rng.NextBounded(extensions.size()))];
    const auto c = DrawList(&rng, domain);
    const auto ec = EncodeTagged(third, c, domain);
    const std::vector<TaggedSet> sets = {ea.tagged, eb.tagged, ec.tagged};
    IntersectTaggedSets(sets, &arena, &out);
    ASSERT_EQ(out, RefIntersect(ref_and, c));
    UnionTaggedSets(sets, &arena, &out);
    ASSERT_EQ(out, RefUnion(ref_or, c));
  }
}

TEST(MixedCodecFuzz, EveryBitmapListPairingMatchesTheOracle) {
  const uint64_t base_seed = TestSeed(77001);
  uint64_t pairing = 0;
  for (const Codec* bitmap_codec : BitmapCodecs()) {
    for (const Codec* list_codec : InvertedListCodecs()) {
      SCOPED_TRACE(std::string(bitmap_codec->Name()) + " x " +
                   std::string(list_codec->Name()));
      RunPairing(*bitmap_codec, *list_codec, base_seed + pairing);
      if (::testing::Test::HasFatalFailure()) return;
      ++pairing;
    }
  }
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const char* value = nullptr;
    if (arg.rfind("--fuzz-iters=", 0) == 0) {
      value = argv[i] + 13;
    } else if (arg == "--fuzz-iters" && i + 1 < argc) {
      value = argv[++i];
    } else {
      continue;
    }
    char* end = nullptr;
    const long iters = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || iters <= 0) {
      std::fprintf(stderr,
                   "--fuzz-iters: expected a positive integer, got '%s'\n",
                   value);
      return 1;
    }
    intcomp::g_fuzz_iters = static_cast<int>(iters);
  }
  return RUN_ALL_TESTS();
}
