// Framing-layer fuzz campaign for the network front end.
//
// Two layers, same contract — hostile bytes can make a request fail, never
// make the process misbehave:
//   1. Pure parsers: FrameDecoder / ParseRequestPayload /
//      ParseResponsePayload hammered with the corruption kit (truncation,
//      bit flips, length inflation, splices, scrambles) plus hand-built
//      adversarial declared lengths (0 and 2^32-1). No sockets, so a
//      failure reproduces from its seed alone.
//   2. Live server: corrupted request streams — including forged CRCs that
//      deliberately pass the checksum — sent over real connections. The
//      server must reply with a Status error or cleanly close, keep serving
//      a control connection, and never crash, hang, or leak (the ASan CI
//      job runs this binary with --fuzz-iters=10000).
//
// This binary has its own main (not gtest_main) to parse --fuzz-iters=N.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/prng.h"
#include "core/registry.h"
#include "engine/thread_pool.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket_io.h"
#include "net/wire.h"
#include "service/plan_text.h"
#include "service/sharded_index.h"
#include "workload/synthetic.h"

namespace intcomp {

int g_fuzz_iters = 300;

namespace net {
namespace {

const std::vector<std::string>& PlanPool() {
  static const auto* plans = new std::vector<std::string>{
      "0",
      "&(0,1)",
      "|(&(0,2),1)",
      "&(|(0,1),|(1,2),0)",
      "4294967295",               // leaf id far out of range: service rejects
      "&(&(&(&(0))))",
      "not a plan at all",
      "&(0,1",                    // truncated grammar
      std::string(2000, '9'),     // oversized number
  };
  return *plans;
}

std::vector<uint8_t> GenuineRequestFrame(Prng* rng) {
  QueryRequest req;
  if (rng->NextBounded(8) == 0) {
    req.type = MsgType::kPing;
  } else {
    req.type = MsgType::kQuery;
    req.deadline_ns = rng->NextBounded(3) == 0 ? 1 + rng->NextBounded(1000) : 0;
    req.plan_text = PlanPool()[rng->NextBounded(PlanPool().size())];
  }
  std::vector<uint8_t> frame;
  EncodeRequestFrame(req, &frame);
  return frame;
}

// Applies one corruption operator from the kit. `fix_crc` re-stamps the
// frame CRC afterwards so the mutation reaches the payload parsers instead
// of dying at the checksum — checksum forgery, the adversarial case.
std::vector<uint8_t> Corrupt(const std::vector<uint8_t>& frame, Prng* rng,
                             bool fix_crc) {
  std::vector<uint8_t> mut;
  switch (rng->NextBounded(5)) {
    case 0:
      mut = TruncateAt(frame, rng->NextBounded(frame.size() + 1));
      break;
    case 1:
      mut = frame;
      FlipBits(&mut, 1 + rng->NextBounded(8), rng);
      break;
    case 2:
      mut = frame;
      InflateLength(&mut, rng);
      break;
    case 3: {
      const std::vector<uint8_t> other = GenuineRequestFrame(rng);
      mut = Splice(frame, other, rng);
      break;
    }
    default:
      mut = frame;
      Scramble(&mut, rng);
      break;
  }
  if (fix_crc && mut.size() >= kFrameHeaderBytes) {
    uint32_t len = 0;
    std::memcpy(&len, mut.data() + 4, 4);
    if (len <= mut.size() - kFrameHeaderBytes) {
      const uint32_t crc =
          Crc32Of({mut.data() + kFrameHeaderBytes, static_cast<size_t>(len)});
      std::memcpy(mut.data() + 8, &crc, 4);
    }
  }
  return mut;
}

// Builds a raw frame header declaring `len` payload bytes (carrying `body`
// actual bytes) — the tool for adversarial declared lengths.
std::vector<uint8_t> RawFrame(uint32_t len, const std::vector<uint8_t>& body) {
  std::vector<uint8_t> out(kFrameHeaderBytes);
  std::memcpy(out.data(), &kFrameMagic, 4);
  std::memcpy(out.data() + 4, &len, 4);
  const uint32_t crc = Crc32Of(body);
  std::memcpy(out.data() + 8, &crc, 4);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

TEST(NetFuzzTest, FrameDecoderSurvivesCorruptStreams) {
  Prng rng(40001);
  for (int it = 0; it < g_fuzz_iters; ++it) {
    FrameDecoder decoder(1 << 16);
    // A stream of several frames, some corrupted, fed in random chunk sizes
    // (the byte-chunking a TCP receive path actually sees).
    std::vector<uint8_t> stream;
    const size_t frames = 1 + rng.NextBounded(4);
    for (size_t f = 0; f < frames; ++f) {
      std::vector<uint8_t> frame = GenuineRequestFrame(&rng);
      if (rng.NextBounded(2) == 0) {
        frame = Corrupt(frame, &rng, rng.NextBounded(2) == 0);
      }
      stream.insert(stream.end(), frame.begin(), frame.end());
    }
    size_t off = 0;
    while (off < stream.size()) {
      const size_t chunk =
          std::min<size_t>(1 + rng.NextBounded(64), stream.size() - off);
      decoder.Feed(stream.data() + off, chunk);
      off += chunk;
      std::vector<uint8_t> payload;
      Status err;
      while (true) {
        const FrameDecoder::Result r = decoder.Next(&payload, &err);
        if (r == FrameDecoder::Result::kFrame) {
          // Whatever came through the CRC gate, the parsers must hold.
          QueryRequest req;
          (void)ParseRequestPayload(payload, 1 << 15, &req);
          QueryResponse resp;
          (void)ParseResponsePayload(payload, &resp);
          continue;
        }
        if (r == FrameDecoder::Result::kBad) {
          EXPECT_FALSE(err.ok());
          off = stream.size();  // connection would close here
        }
        break;
      }
    }
    // The decoder never buffers past one declared frame: memory stays
    // bounded by the cap however hostile the stream.
    EXPECT_LE(decoder.BufferedBytes(), (1u << 16) + kFrameHeaderBytes);
  }
}

TEST(NetFuzzTest, ParsersSurvivePureNoise) {
  Prng rng(40002);
  for (int it = 0; it < g_fuzz_iters; ++it) {
    std::vector<uint8_t> noise(rng.NextBounded(256));
    for (auto& b : noise) b = static_cast<uint8_t>(rng.Next());
    QueryRequest req;
    (void)ParseRequestPayload(noise, 1 << 15, &req);
    QueryResponse resp;
    (void)ParseResponsePayload(noise, &resp);
  }
}

TEST(NetFuzzTest, AdversarialDeclaredLengthsAreRejectedCheaply) {
  // Declared length 2^32-1 with a tiny body: the decoder must go bad on the
  // 12-byte header alone — never waiting for (or allocating) 4 GiB.
  {
    FrameDecoder decoder;  // default 4 MiB cap
    const std::vector<uint8_t> frame = RawFrame(0xFFFFFFFFu, {1, 2, 3});
    decoder.Feed(frame.data(), frame.size());
    std::vector<uint8_t> payload;
    Status err;
    EXPECT_EQ(decoder.Next(&payload, &err), FrameDecoder::Result::kBad);
    EXPECT_EQ(err.code(), StatusCode::kCorruptData);
    EXPECT_LE(decoder.BufferedBytes(), frame.size());
  }
  // Declared length 0: a valid (empty) frame whose payload then fails the
  // request parser — framing survives, the payload layer rejects.
  {
    FrameDecoder decoder;
    const std::vector<uint8_t> frame = RawFrame(0, {});
    decoder.Feed(frame.data(), frame.size());
    std::vector<uint8_t> payload;
    Status err;
    ASSERT_EQ(decoder.Next(&payload, &err), FrameDecoder::Result::kFrame);
    EXPECT_TRUE(payload.empty());
    QueryRequest req;
    EXPECT_EQ(ParseRequestPayload(payload, 1 << 15, &req).code(),
              StatusCode::kCorruptData);
  }
  // Declared length one past the cap: rejected exactly at the boundary.
  {
    FrameDecoder decoder(64);
    const std::vector<uint8_t> frame = RawFrame(65, {});
    decoder.Feed(frame.data(), frame.size());
    std::vector<uint8_t> payload;
    Status err;
    EXPECT_EQ(decoder.Next(&payload, &err), FrameDecoder::Result::kBad);
  }
  // Declared plan length beyond the payload: request parser rejects.
  {
    std::vector<uint8_t> payload;
    payload.push_back(static_cast<uint8_t>(MsgType::kQuery));
    payload.resize(payload.size() + 8);  // deadline
    const uint32_t plan_len = 0xFFFFFFFFu;
    const size_t n = payload.size();
    payload.resize(n + 4);
    std::memcpy(payload.data() + n, &plan_len, 4);
    payload.push_back('0');  // one actual byte
    QueryRequest req;
    EXPECT_EQ(ParseRequestPayload(payload, 1 << 15, &req).code(),
              StatusCode::kCorruptData);
  }
}

TEST(NetFuzzTest, LiveServerSurvivesCorruptedStreams) {
  const Codec* codec = FindCodec("Roaring");
  ASSERT_NE(codec, nullptr);
  std::vector<std::vector<uint32_t>> lists;
  lists.push_back(GenerateUniform(600, 1 << 13, 41));
  lists.push_back(GenerateZipf(600, 1 << 13, kPaperZipfSkew, 42));
  lists.push_back(GenerateMarkov(600, 1 << 13, kPaperMarkovClustering, 43));

  ThreadPool pool(2);
  const ShardedIndex index = ShardedIndex::Build(*codec, lists, 1 << 13, 2);
  IndexService service(&index, &pool, IndexServiceOptions{});
  ServerOptions options;
  options.idle_timeout_ms = 2000;  // reap fuzz connections we abandon
  QueryServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  QueryPlan control_plan;
  ASSERT_TRUE(ParsePlanText("&(0,1)", &control_plan).ok());
  std::vector<uint32_t> ref;
  ASSERT_TRUE(service.Query(control_plan, &ref).ok());

  Prng rng(40003);
  QueryClient fuzz;
  for (int it = 0; it < g_fuzz_iters; ++it) {
    if (!fuzz.Connected()) {
      ASSERT_TRUE(fuzz.Connect("127.0.0.1", server.port()).ok());
    }
    std::vector<uint8_t> bytes = GenuineRequestFrame(&rng);
    const int shape = static_cast<int>(rng.NextBounded(8));
    if (shape == 6) {
      bytes = RawFrame(0xFFFFFFFFu, {});            // hostile declared length
    } else if (shape == 7) {
      bytes = RawFrame(0, {});                      // zero-length frame
    } else if (shape != 0) {                        // 1/8 genuine passthrough
      bytes = Corrupt(bytes, &rng, rng.NextBounded(2) == 0);
    }
    if (!fuzz.SendRaw(bytes.data(), bytes.size()).ok()) {
      fuzz.Close();  // server already closed on an earlier framing error
      continue;
    }
    // Bounded-read a reply on a sample of iterations: whatever arrives must
    // be a well-formed reply frame (any status). Timeouts (server waiting
    // for the rest of a truncated frame) and clean closes are both fine.
    if (it % 16 == 0) {
      (void)SetRecvTimeoutMs(fuzz.raw_fd(), 20);
      QueryResponse resp;
      const Status st = fuzz.ReadResponse(&resp);
      if (!st.ok() && st.code() != StatusCode::kDeadlineExceeded) {
        fuzz.Close();  // framing desync or server-side close: reconnect
      } else if (st.ok()) {
        (void)SetRecvTimeoutMs(fuzz.raw_fd(), 0);
      }
    }
    // Control probe: the server keeps serving correct answers throughout.
    if (it % 64 == 0 || it + 1 == g_fuzz_iters) {
      QueryClient control;
      ASSERT_TRUE(control.Connect("127.0.0.1", server.port()).ok());
      std::vector<uint32_t> rows;
      const Status st = control.Query("&(0,1)", 0, &rows);
      ASSERT_TRUE(st.ok()) << "iter " << it << ": " << st.ToString();
      ASSERT_EQ(rows, ref) << "iter " << it;
    }
  }
  fuzz.Close();
  server.Stop();
  // If any fuzz payload had crashed a connection thread uncleanly the join
  // in Stop() would hang or the sanitizer job would flag it; reaching here
  // with a served control query every 64 iterations is the pass condition.
}

}  // namespace
}  // namespace net
}  // namespace intcomp

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const char* value = nullptr;
    if (arg.rfind("--fuzz-iters=", 0) == 0) {
      value = argv[i] + 13;
    } else if (arg == "--fuzz-iters" && i + 1 < argc) {
      value = argv[++i];
    } else {
      continue;
    }
    const int n = std::atoi(value);
    if (n <= 0) {
      std::fprintf(stderr, "bad --fuzz-iters value: %s\n", value);
      return 2;
    }
    intcomp::g_fuzz_iters = n;
  }
  return RUN_ALL_TESTS();
}
