// Integration suite for the TCP query front end (src/net): round-trip
// bit-identity against the in-process service across every codec, deadline
// and admission-control semantics, stalled-client containment, graceful
// drain, and a concurrent hammer the TSan CI job runs.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/thread_pool.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/plan_text.h"
#include "service/sharded_index.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace net {
namespace {

constexpr uint64_t kNumRows = 1 << 14;

const std::vector<std::vector<uint32_t>>& TestLists() {
  static const auto* lists = [] {
    auto* l = new std::vector<std::vector<uint32_t>>;
    l->push_back(GenerateUniform(1500, kNumRows, 21));
    l->push_back(GenerateZipf(1500, kNumRows, kPaperZipfSkew, 22));
    l->push_back(GenerateMarkov(1500, kNumRows, kPaperMarkovClustering, 23));
    l->push_back(GenerateUniform(400, kNumRows, 24));
    l->push_back(GenerateUniform(6000, kNumRows, 25));  // dense-ish
    l->push_back(GenerateZipf(400, kNumRows, kPaperZipfSkew, 26));
    return l;
  }();
  return *lists;
}

const std::vector<std::string>& TestPlans() {
  static const auto* plans = new std::vector<std::string>{
      "0",
      "&(0,1)",
      "|(2,3)",
      "&(|(0,1),2)",
      "&(0,1,2,3)",
      "|(&(0,4),&(1,5))",
      "&(|(3,5),|(0,2),4)",
  };
  return *plans;
}

// One self-contained server stack: pool, index, service, server.
struct ServerStack {
  explicit ServerStack(const Codec& codec, ServerOptions options = {},
                       IndexServiceOptions service_options = {})
      : pool(3),
        index(ShardedIndex::Build(codec, TestLists(), kNumRows, 4)),
        service(&index, &pool, service_options) {
    server = std::make_unique<QueryServer>(&service, options);
    const Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  std::vector<uint32_t> Reference(const std::string& plan_text) {
    QueryPlan plan;
    EXPECT_TRUE(ParsePlanText(plan_text, &plan).ok());
    std::vector<uint32_t> rows;
    EXPECT_TRUE(service.Query(plan, &rows).ok());
    return rows;
  }

  ThreadPool pool;
  ShardedIndex index;
  IndexService service;
  std::unique_ptr<QueryServer> server;
};

class NetServerCodecTest : public ::testing::TestWithParam<const Codec*> {};

TEST_P(NetServerCodecTest, RoundTripBitIdenticalToInProcessQuery) {
  ServerStack stack(*GetParam());
  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());
  for (const std::string& text : TestPlans()) {
    SCOPED_TRACE(text);
    std::vector<uint32_t> rows;
    const Status st = client.Query(text, 0, &rows);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(rows, stack.Reference(text));
  }
  const QueryServer::Stats stats = stack.server->GetStats();
  EXPECT_EQ(stats.ok, TestPlans().size());
  EXPECT_EQ(stats.malformed, 0u);
}

std::vector<const Codec*> AllAndExtensions() {
  return {AllCodecsWithExtensions().begin(), AllCodecsWithExtensions().end()};
}

std::string ParamName(const ::testing::TestParamInfo<const Codec*>& info) {
  std::string name;
  for (char c : std::string(info.param->Name())) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      name += c;
    } else if (c == '*') {
      name += "Star";
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, NetServerCodecTest,
                         ::testing::ValuesIn(AllAndExtensions()), ParamName);

const Codec& DefaultCodec() {
  const Codec* codec = FindCodec("Roaring");
  EXPECT_NE(codec, nullptr);
  return *codec;
}

TEST(NetServerTest, PingRoundTrips) {
  ServerStack stack(DefaultCodec());
  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, ExpiredDeadlineYieldsDeadlineExceededAndFreesWorker) {
  ServerStack stack(DefaultCodec());
  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());

  // A 1 ns deadline is past before the service's entry check runs, so this
  // is deterministic: the reply must be kDeadlineExceeded, not a result.
  std::vector<uint32_t> rows;
  const Status st = client.Query("&(0,1)", 1, &rows);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_TRUE(rows.empty());

  // The worker and the admission slot are free again: the same connection
  // serves a normal query.
  ASSERT_TRUE(client.Query("&(0,1)", 0, &rows).ok());
  EXPECT_EQ(rows, stack.Reference("&(0,1)"));
  EXPECT_EQ(stack.server->InFlight(), 0u);
  EXPECT_EQ(stack.server->GetStats().deadline, 1u);
}

TEST(NetServerTest, RequestsBeyondBudgetAreShedWithOverloaded) {
  // One in-flight slot; the hook parks the first admitted request so the
  // overload condition is held open deterministically.
  std::mutex mu;
  std::condition_variable cv;
  bool parked_release = false;
  std::atomic<int> admitted{0};
  ServerOptions options;
  options.max_in_flight = 1;
  options.on_admitted = [&] {
    if (admitted.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return parked_release; });
    }
  };
  ServerStack stack(DefaultCodec(), options);

  QueryClient parked;
  ASSERT_TRUE(parked.Connect("127.0.0.1", stack.server->port()).ok());
  std::vector<uint32_t> parked_rows;
  Status parked_st;
  std::thread parked_thread([&] {
    parked_st = parked.Query("&(|(0,1),2)", 0, &parked_rows);
  });
  while (admitted.load() == 0) std::this_thread::yield();

  // Budget exhausted: a second query is shed with an explicit kOverloaded
  // (not queued, not dropped silently).
  QueryClient shed;
  ASSERT_TRUE(shed.Connect("127.0.0.1", stack.server->port()).ok());
  std::vector<uint32_t> shed_rows;
  const Status st = shed.Query("0", 0, &shed_rows);
  EXPECT_EQ(st.code(), StatusCode::kOverloaded) << st.ToString();
  EXPECT_TRUE(shed_rows.empty());

  // Pings bypass admission: the server is still observably alive.
  EXPECT_TRUE(shed.Ping().ok());

  // Release the parked request: it must complete bit-identically, shedding
  // never corrupts admitted work.
  {
    std::lock_guard<std::mutex> lk(mu);
    parked_release = true;
  }
  cv.notify_all();
  parked_thread.join();
  ASSERT_TRUE(parked_st.ok()) << parked_st.ToString();
  EXPECT_EQ(parked_rows, stack.Reference("&(|(0,1),2)"));

  const QueryServer::Stats stats = stack.server->GetStats();
  EXPECT_EQ(stats.overloaded, 1u);
  EXPECT_EQ(stats.ok, 1u);
}

TEST(NetServerTest, StalledClientIsReapedWhileOthersAreServed) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  ServerStack stack(DefaultCodec(), options);

  // Stalls mid-frame: a valid magic and a declared length that never
  // arrives. The server must not hold a pool worker for this.
  QueryClient stalled;
  ASSERT_TRUE(stalled.Connect("127.0.0.1", stack.server->port()).ok());
  QueryRequest req;
  req.plan_text = "&(0,1)";
  std::vector<uint8_t> frame;
  EncodeRequestFrame(req, &frame);
  ASSERT_TRUE(stalled.SendRaw(frame.data(), frame.size() / 2).ok());

  // A healthy connection keeps getting served the whole time.
  QueryClient healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", stack.server->port()).ok());
  std::vector<uint32_t> rows;
  ASSERT_TRUE(healthy.Query("&(0,1)", 0, &rows).ok());
  EXPECT_EQ(rows, stack.Reference("&(0,1)"));

  // The stalled connection is closed by the idle timeout. (The healthy
  // connection above may idle out too once it goes quiet — that's the same
  // timeout doing its job — so the assertion is >= 1, and the post-reap
  // probe uses a fresh connection.)
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stack.server->GetStats().idle_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(stack.server->GetStats().idle_closed, 1u);
  QueryResponse resp;
  EXPECT_FALSE(stalled.ReadResponse(&resp).ok());  // EOF, not a reply

  QueryClient after;
  ASSERT_TRUE(after.Connect("127.0.0.1", stack.server->port()).ok());
  ASSERT_TRUE(after.Query("|(2,3)", 0, &rows).ok());
  EXPECT_EQ(rows, stack.Reference("|(2,3)"));
}

TEST(NetServerTest, MalformedPayloadKeepsConnectionBadFramingCloses) {
  ServerStack stack(DefaultCodec());
  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());

  // Garbage inside a valid frame: error reply, connection stays usable.
  const uint8_t junk[] = {0x77, 0x01, 0x02, 0x03};
  std::vector<uint8_t> frame;
  AppendFrame(junk, &frame);
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  QueryResponse resp;
  ASSERT_TRUE(client.ReadResponse(&resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kCorruptData);
  std::vector<uint32_t> rows;
  ASSERT_TRUE(client.Query("0", 0, &rows).ok());
  EXPECT_EQ(rows, stack.Reference("0"));

  // Bad magic: one error reply, then the server closes the stream.
  const uint8_t bad_magic[12] = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(client.SendRaw(bad_magic, sizeof(bad_magic)).ok());
  ASSERT_TRUE(client.ReadResponse(&resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kCorruptData);
  EXPECT_FALSE(client.ReadResponse(&resp).ok());  // closed

  EXPECT_EQ(stack.server->GetStats().malformed, 2u);
}

TEST(NetServerTest, ConnectionsBeyondCapAreRefused) {
  ServerOptions options;
  options.max_connections = 1;
  ServerStack stack(DefaultCodec(), options);

  QueryClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", stack.server->port()).ok());
  std::vector<uint32_t> rows;
  ASSERT_TRUE(first.Query("0", 0, &rows).ok());

  // The second connect lands in the accept queue, but the server closes it
  // on accept; the round trip fails as a transport error, not a hang.
  QueryClient second;
  ASSERT_TRUE(second.Connect("127.0.0.1", stack.server->port()).ok());
  EXPECT_EQ(second.Ping().code(), StatusCode::kUnavailable);

  // The first connection is unaffected.
  ASSERT_TRUE(first.Query("0", 0, &rows).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stack.server->GetStats().refused == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(stack.server->GetStats().refused, 1u);
}

TEST(NetServerTest, GracefulDrainCompletesInFlightRequests) {
  std::atomic<bool> in_handler{false};
  ServerOptions options;
  options.drain_timeout_ms = 5000;
  options.on_admitted = [&] {
    in_handler.store(true);
    // Hold the request in flight long enough for Stop() to overlap it.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  };
  ServerStack stack(DefaultCodec(), options);
  const std::vector<uint32_t> ref = stack.Reference("&(0,1,2,3)");

  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());
  std::vector<uint32_t> rows;
  Status st;
  std::thread t([&] { st = client.Query("&(0,1,2,3)", 0, &rows); });
  while (!in_handler.load()) std::this_thread::yield();

  // Stop overlaps the in-flight request: it must still complete and its
  // response must still reach the client before the connection dies.
  stack.server->Stop();
  t.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(rows, ref);

  // After drain the listener is gone: new connections fail outright.
  QueryClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", stack.server->port()).ok() &&
               late.Ping().ok());
}

TEST(NetServerTest, ConcurrentHammerStaysBitIdentical) {
  // The TSan CI job runs this: N client threads × M mixed queries + pings
  // against one server, every result checked against the in-process
  // reference computed up front.
  ServerStack stack(DefaultCodec());
  std::vector<std::vector<uint32_t>> refs;
  for (const std::string& text : TestPlans()) {
    refs.push_back(stack.Reference(text));
  }

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryClient client;
      if (!client.Connect("127.0.0.1", stack.server->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const size_t q = (static_cast<size_t>(t) * 31 + i) % TestPlans().size();
        if (i % 7 == 3) {
          if (!client.Ping().ok()) failures.fetch_add(1);
          continue;
        }
        std::vector<uint32_t> rows;
        const Status st = client.Query(TestPlans()[q], 0, &rows);
        if (!st.ok() || rows != refs[q]) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(stack.server->InFlight(), 0u);
  stack.server->Stop();  // drain with all clients already gone
}

}  // namespace
}  // namespace net
}  // namespace intcomp
