// Torn-frame sweep for the network front end: a recorded request stream is
// replayed truncated at EVERY byte boundary, each truncation on its own
// connection that then drops mid-frame. The server must treat each torn
// stream as just another client death — no crash, no stuck worker, no leak
// (the ASan CI job runs this binary), and a control connection must get
// correct answers throughout.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/thread_pool.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/plan_text.h"
#include "service/sharded_index.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace net {
namespace {

constexpr uint64_t kNumRows = 1 << 13;

// The recorded stream: a ping, two queries, and a query with a deadline —
// every message shape the protocol has, concatenated as they would appear
// on one connection's byte stream.
std::vector<uint8_t> RecordedStream() {
  std::vector<uint8_t> stream;
  QueryRequest ping;
  ping.type = MsgType::kPing;
  EncodeRequestFrame(ping, &stream);

  QueryRequest q1;
  q1.plan_text = "&(0,1)";
  EncodeRequestFrame(q1, &stream);

  QueryRequest q2;
  q2.plan_text = "|(&(0,2),1)";
  EncodeRequestFrame(q2, &stream);

  QueryRequest q3;
  q3.plan_text = "0";
  q3.deadline_ns = 1000000000ull;  // 1 s: comfortably alive
  EncodeRequestFrame(q3, &stream);
  return stream;
}

TEST(NetTornFrameTest, EveryBytePrefixLeavesServerServing) {
  const Codec* codec = FindCodec("Roaring");
  ASSERT_NE(codec, nullptr);
  std::vector<std::vector<uint32_t>> lists;
  lists.push_back(GenerateUniform(800, kNumRows, 31));
  lists.push_back(GenerateZipf(800, kNumRows, kPaperZipfSkew, 32));
  lists.push_back(GenerateMarkov(800, kNumRows, kPaperMarkovClustering, 33));

  ThreadPool pool(2);
  const ShardedIndex index = ShardedIndex::Build(*codec, lists, kNumRows, 2);
  IndexService service(&index, &pool, IndexServiceOptions{});
  QueryServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  QueryPlan control_plan;
  ASSERT_TRUE(ParsePlanText("&(0,1)", &control_plan).ok());
  std::vector<uint32_t> ref;
  ASSERT_TRUE(service.Query(control_plan, &ref).ok());

  QueryClient control;
  ASSERT_TRUE(control.Connect("127.0.0.1", server.port()).ok());

  const std::vector<uint8_t> stream = RecordedStream();
  for (size_t prefix = 0; prefix <= stream.size(); ++prefix) {
    SCOPED_TRACE("prefix=" + std::to_string(prefix));
    QueryClient torn;
    ASSERT_TRUE(torn.Connect("127.0.0.1", server.port()).ok());
    if (prefix > 0) {
      ASSERT_TRUE(torn.SendRaw(stream.data(), prefix).ok());
    }
    // Drop the connection mid-frame (or mid-stream), responses unread.
    torn.Close();

    // The control connection still gets bit-correct service. Probing every
    // 16th prefix (plus the last) keeps the sweep fast while still
    // interleaving live queries with the teardown storm.
    if (prefix % 16 == 0 || prefix == stream.size()) {
      std::vector<uint32_t> rows;
      const Status st = control.Query("&(0,1)", 0, &rows);
      ASSERT_TRUE(st.ok()) << st.ToString();
      ASSERT_EQ(rows, ref);
    }
  }

  // Final health check after the whole sweep, on a fresh connection too.
  QueryClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  std::vector<uint32_t> rows;
  ASSERT_TRUE(fresh.Query("&(0,1)", 0, &rows).ok());
  EXPECT_EQ(rows, ref);

  // Stop() must drain cleanly even after hundreds of torn connections; any
  // leaked fd, thread, or buffer from a torn stream shows up here (threads
  // via the join, memory via the ASan job).
  server.Stop();
  const QueryServer::Stats stats = server.GetStats();
  // stream.size()+1 torn connections, plus the control and fresh clients.
  EXPECT_EQ(stats.accepted, stream.size() + 3u);
}

}  // namespace
}  // namespace net
}  // namespace intcomp
