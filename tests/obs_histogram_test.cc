// Tests for the lock-free latency histogram: bucket geometry, quantile
// estimates against a sorted-vector oracle (single- and multi-threaded),
// merge associativity/commutativity, and quantile monotonicity on bimodal
// input.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "obs/histogram.h"

namespace intcomp {
namespace {

using obs::LatencyHistogram;

TEST(LatencyHistogramTest, SmallValuesGetExactUnitBuckets) {
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(static_cast<int>(v)), v);
  }
}

TEST(LatencyHistogramTest, BucketBoundsTileTheValueRange) {
  // Every bucket's upper bound maps back into that bucket, and the next
  // value starts the next bucket — the buckets tile [0, 2^63) with no gaps
  // or overlaps.
  for (int idx = 0; idx < LatencyHistogram::kBuckets - 1; ++idx) {
    const uint64_t hi = LatencyHistogram::BucketUpperBound(idx);
    EXPECT_EQ(LatencyHistogram::BucketIndex(hi), idx) << "idx " << idx;
    if (hi != UINT64_MAX) {
      EXPECT_EQ(LatencyHistogram::BucketIndex(hi + 1), idx + 1)
          << "idx " << idx;
    }
    EXPECT_GT(LatencyHistogram::BucketUpperBound(idx + 1), hi);
  }
}

TEST(LatencyHistogramTest, RelativeBucketErrorIsBoundedByOneEighth) {
  Prng rng(1);
  for (int i = 0; i < 20000; ++i) {
    // Spread across magnitudes: a random bit width, then a random value.
    const int bits = 1 + static_cast<int>(rng.NextBounded(50));
    const uint64_t v = rng.Next() >> (64 - bits);
    const int idx = LatencyHistogram::BucketIndex(v);
    const uint64_t hi = LatencyHistogram::BucketUpperBound(idx);
    ASSERT_GE(hi, v);
    // Upper bound overshoots the true value by at most 1/8 (plus the -1
    // integer truncation slack for tiny values).
    EXPECT_LE(hi, v + v / 8 + 1) << "v " << v;
  }
}

// Oracle: the histogram promises its estimate is the upper bound of the
// bucket containing the rank-ceil(p/100*n) observation — so it must be >=
// the exact order statistic and within the 1/8 relative error of it.
void CheckAgainstOracle(const LatencyHistogram& h,
                        std::vector<uint64_t> values) {
  std::sort(values.begin(), values.end());
  ASSERT_EQ(h.Count(), values.size());
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(p / 100.0 * static_cast<double>(values.size()))));
    const uint64_t exact = values[rank - 1];
    const uint64_t est = h.ValueAtPercentile(p);
    EXPECT_GE(est, exact) << "p " << p;
    EXPECT_LE(est, exact + exact / 8 + 1) << "p " << p;
  }
}

std::vector<uint64_t> MixedMagnitudeValues(size_t n, uint64_t seed) {
  Prng rng(seed);
  std::vector<uint64_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int bits = 4 + static_cast<int>(rng.NextBounded(28));
    values.push_back(rng.Next() >> (64 - bits));
  }
  return values;
}

TEST(LatencyHistogramTest, QuantilesMatchSortedOracleSingleThread) {
  const auto values = MixedMagnitudeValues(50000, 2);
  LatencyHistogram h;
  for (uint64_t v : values) h.Record(v);
  CheckAgainstOracle(h, values);
  uint64_t sum = 0;
  for (uint64_t v : values) sum += v;
  EXPECT_EQ(h.Sum(), sum);
}

TEST(LatencyHistogramTest, QuantilesMatchSortedOracleManyThreads) {
  // N threads record disjoint slices of the same value set; after joining,
  // the histogram must agree with the oracle over the union exactly (the
  // relaxed contract only matters for readers concurrent with writers).
  constexpr size_t kThreads = 8;
  const auto values = MixedMagnitudeValues(80000, 3);
  LatencyHistogram h;
  std::vector<std::thread> threads;
  const size_t chunk = values.size() / kThreads;
  for (size_t t = 0; t < kThreads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = t + 1 == kThreads ? values.size() : begin + chunk;
    threads.emplace_back([&h, &values, begin, end] {
      for (size_t i = begin; i < end; ++i) h.Record(values[i]);
    });
  }
  for (auto& th : threads) th.join();
  CheckAgainstOracle(h, values);
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  LatencyHistogram h1, h2, h3;
  const auto v1 = MixedMagnitudeValues(5000, 4);
  const auto v2 = MixedMagnitudeValues(7000, 5);
  const auto v3 = MixedMagnitudeValues(3000, 6);
  for (uint64_t v : v1) h1.Record(v);
  for (uint64_t v : v2) h2.Record(v);
  for (uint64_t v : v3) h3.Record(v);

  LatencyHistogram left;  // (h1 + h2) + h3
  left.MergeFrom(h1);
  left.MergeFrom(h2);
  left.MergeFrom(h3);
  LatencyHistogram right;  // h3 + (h1 + h2), built in another order
  LatencyHistogram mid;
  mid.MergeFrom(h2);
  mid.MergeFrom(h1);
  right.MergeFrom(h3);
  right.MergeFrom(mid);

  EXPECT_EQ(left.Count(), right.Count());
  EXPECT_EQ(left.Sum(), right.Sum());
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    ASSERT_EQ(left.BucketCount(i), right.BucketCount(i)) << "bucket " << i;
  }
  EXPECT_EQ(left.Count(), v1.size() + v2.size() + v3.size());
  // Merging an empty histogram changes nothing.
  LatencyHistogram empty;
  left.MergeFrom(empty);
  EXPECT_EQ(left.Count(), right.Count());
}

TEST(LatencyHistogramTest, BimodalQuantilesAreMonotoneAndSplitTheModes) {
  // 90% fast mode (~1us), 10% slow mode (~1ms): the shape that breaks
  // scalar means. p50 must sit in the fast mode, p99/p999 in the slow mode,
  // and the quantile curve must never decrease.
  LatencyHistogram h;
  Prng rng(7);
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBounded(10) == 0) {
      h.Record(1000000 + rng.NextBounded(100000));  // ~1ms
    } else {
      h.Record(1000 + rng.NextBounded(200));  // ~1us
    }
  }
  EXPECT_LT(h.P50(), 2000u);
  EXPECT_GT(h.P99(), 900000u);
  EXPECT_GE(h.P999(), h.P99());
  uint64_t prev = 0;
  for (double p = 0.0; p <= 100.0; p += 0.25) {
    const uint64_t v = h.ValueAtPercentile(p);
    EXPECT_GE(v, prev) << "p " << p;
    prev = v;
  }
  // Mean lands between the modes — the number the histogram replaces.
  EXPECT_GT(h.Mean(), 2000.0);
  EXPECT_LT(h.Mean(), 900000.0);
}

TEST(LatencyHistogramTest, ResetAndEmptyBehave) {
  LatencyHistogram h;
  EXPECT_EQ(h.ValueAtPercentile(50.0), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  h.Record(123);
  h.Record(456);
  EXPECT_EQ(h.Count(), 2u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.P99(), 0u);
  EXPECT_NE(h.ToString().find("count=0"), std::string::npos);
}

}  // namespace
}  // namespace intcomp
