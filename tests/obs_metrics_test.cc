// Tests for the metrics registry: histogram/counter lifecycle, the
// disabled-path no-op guarantees, kernel-counter folding, and the JSONL /
// Prometheus export formats (the contract tools/perf_check.py parses).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd_intersect.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace intcomp {
namespace {

using obs::LatencyHistogram;
using obs::MetricsRegistry;
using obs::OpKind;

std::vector<std::string> Lines(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(MetricsRegistryTest, OpLatencyPointersAreStableAndKeyed) {
  MetricsRegistry reg;
  LatencyHistogram* h1 = reg.OpLatency("WAH", OpKind::kIntersect);
  LatencyHistogram* h2 = reg.OpLatency("WAH", OpKind::kIntersect);
  LatencyHistogram* h3 = reg.OpLatency("WAH", OpKind::kUnion);
  LatencyHistogram* h4 = reg.OpLatency("Roaring", OpKind::kIntersect);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_NE(h1, h4);
  h1->Record(100);
  h1->Record(200);
  EXPECT_EQ(reg.OpLatency("WAH", OpKind::kIntersect)->Count(), 2u);
  EXPECT_EQ(h3->Count(), 0u);

  reg.RecordOpLatency("WAH", OpKind::kUnion, 50);
  EXPECT_EQ(h3->Count(), 1u);
}

TEST(MetricsRegistryTest, CountersAccumulateAcrossThreads) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.CounterValue("missing"), 0u);
  constexpr int kThreads = 8;
  constexpr int kAdds = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kAdds; ++i) reg.AddCounter("shared", 2);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.CounterValue("shared"), 2ull * kThreads * kAdds);
}

TEST(MetricsRegistryTest, KernelCountersFoldIntoNamedCounters) {
  MetricsRegistry reg;
  KernelCounters k;
  k.simd_merge = 7;
  k.block_probes = 3;
  reg.RecordKernelCounters("PforDelta", k);
  reg.RecordKernelCounters("PforDelta", k);
  EXPECT_EQ(reg.CounterValue("kernel.PforDelta.simd_merge"), 14u);
  EXPECT_EQ(reg.CounterValue("kernel.PforDelta.block_probes"), 6u);
  // Zero fields never materialize a counter (keeps exports sparse).
  EXPECT_EQ(reg.CounterValue("kernel.PforDelta.scalar_merge"), 0u);
  const std::string jsonl = reg.ExportJsonl("t");
  EXPECT_EQ(jsonl.find("scalar_merge"), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalRegistryIsDisabledByDefault) {
  // ScopedOpTimer against the disabled global must record nothing (the
  // near-zero disabled cost claim rests on this early-out).
  MetricsRegistry& global = MetricsRegistry::Global();
  const bool was_enabled = global.Enabled();
  global.SetEnabled(false);
  global.Reset();
  {
    obs::ScopedOpTimer timer("NoSuchCodec", OpKind::kDecode);
  }
  EXPECT_EQ(global.ExportJsonl("t").find("NoSuchCodec"), std::string::npos);

  global.SetEnabled(true);
  {
    obs::ScopedOpTimer timer("NoSuchCodec", OpKind::kDecode);
  }
  EXPECT_EQ(global.OpLatency("NoSuchCodec", OpKind::kDecode)->Count(), 1u);
  global.Reset();
  global.SetEnabled(was_enabled);
}

TEST(MetricsRegistryTest, JsonlExportIsWellFormedAndDeterministic) {
  MetricsRegistry reg;
  reg.OpLatency("WAH", OpKind::kIntersect)->Record(1500);
  reg.OpLatency("WAH", OpKind::kIntersect)->Record(2500);
  reg.OpLatency("Roaring", OpKind::kQuery)->Record(900);
  reg.AddCounter("engine.lists_touched", 42);

  const std::string jsonl = reg.ExportJsonl("unit_bench");
  const auto lines = Lines(jsonl);
  ASSERT_EQ(lines.size(), 4u);  // meta + 2 op_latency + 1 counter
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_NE(lines[0].find("\"metric\":\"meta\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"bench\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"trace_sampling\":"), std::string::npos);
  // Codec keys iterate in map order: Roaring before WAH, deterministically.
  EXPECT_NE(lines[1].find("\"codec\":\"Roaring\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"op\":\"query\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"codec\":\"WAH\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"op\":\"intersect\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"count\":2"), std::string::npos);
  EXPECT_NE(lines[2].find("\"mean_ns\":2000.0"), std::string::npos);
  EXPECT_NE(lines[2].find("\"p50_ns\":"), std::string::npos);
  EXPECT_NE(lines[2].find("\"p999_ns\":"), std::string::npos);
  EXPECT_NE(lines[3].find(
                "{\"metric\":\"counter\",\"name\":\"engine.lists_touched\","
                "\"value\":42}"),
            std::string::npos);
  // Same registry state, same bytes: the diffability perf_check.py needs.
  EXPECT_EQ(jsonl, reg.ExportJsonl("unit_bench"));
  // Hostile names can't break the framing.
  reg.AddCounter("evil\"name\nwith\\stuff", 1);
  for (const std::string& line : Lines(reg.ExportJsonl("unit_bench"))) {
    EXPECT_EQ(line.find('\n'), std::string::npos);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(MetricsRegistryTest, PrometheusExportFollowsTextExposition) {
  MetricsRegistry reg;
  for (int i = 1; i <= 100; ++i) {
    reg.OpLatency("EWAH", OpKind::kDecode)->Record(1000 * i);
  }
  reg.AddCounter("engine.bytes_decoded", 7);
  const std::string prom = reg.ExportPrometheus();
  EXPECT_NE(prom.find("# TYPE intcomp_op_latency_ns summary"),
            std::string::npos);
  for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
    std::string needle = "intcomp_op_latency_ns{codec=\"EWAH\",op=\"decode\","
                         "quantile=\"";
    needle += q;
    needle += "\"}";
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(prom.find("intcomp_op_latency_ns_count{codec=\"EWAH\","
                      "op=\"decode\"} 100"),
            std::string::npos);
  EXPECT_NE(prom.find("intcomp_op_latency_ns_sum{codec=\"EWAH\","
                      "op=\"decode\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE intcomp_counter counter"), std::string::npos);
  EXPECT_NE(
      prom.find("intcomp_counter{name=\"engine.bytes_decoded\"} 7"),
      std::string::npos);
}

TEST(MetricsRegistryTest, ExportToFileWritesBothFormatsAndRejectsUnknown) {
  MetricsRegistry reg;
  reg.OpLatency("VB", OpKind::kIntersect)->Record(500);
  const std::string dir = ::testing::TempDir();
  const std::string jsonl_path = dir + "/metrics_test.jsonl";
  const std::string prom_path = dir + "/metrics_test.prom";

  ASSERT_TRUE(reg.ExportToFile(jsonl_path, "jsonl", "file_bench"));
  ASSERT_TRUE(reg.ExportToFile(prom_path, "prom", "file_bench"));
  EXPECT_FALSE(reg.ExportToFile(jsonl_path, "xml", "file_bench"));
  EXPECT_FALSE(
      reg.ExportToFile(dir + "/no/such/dir/x.jsonl", "jsonl", "file_bench"));

  std::ifstream jf(jsonl_path);
  std::stringstream jbuf;
  jbuf << jf.rdbuf();
  EXPECT_EQ(jbuf.str(), reg.ExportJsonl("file_bench"));
  std::ifstream pf(prom_path);
  std::stringstream pbuf;
  pbuf << pf.rdbuf();
  EXPECT_EQ(pbuf.str(), reg.ExportPrometheus());
  std::remove(jsonl_path.c_str());
  std::remove(prom_path.c_str());
}

TEST(MetricsRegistryTest, ResetDropsEverything) {
  MetricsRegistry reg;
  reg.OpLatency("SBH", OpKind::kUnion)->Record(10);
  reg.AddCounter("c", 1);
  reg.Reset();
  EXPECT_EQ(reg.CounterValue("c"), 0u);
  // Only the meta line survives a reset.
  EXPECT_EQ(Lines(reg.ExportJsonl("t")).size(), 1u);
  // Post-reset recording works (fresh histograms get created).
  reg.RecordOpLatency("SBH", OpKind::kUnion, 20);
  EXPECT_EQ(reg.OpLatency("SBH", OpKind::kUnion)->Count(), 1u);
}

}  // namespace
}  // namespace intcomp
