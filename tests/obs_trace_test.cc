// Tests for the trace layer: span nesting, cross-thread context propagation
// through the work-stealing pool, sampling determinism under a fixed seed,
// and ring-buffer wraparound. Every test quiesces (sampling off, pools
// destroyed) before touching SnapshotSpans/ClearSpans, per the contract in
// obs/trace.h.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/thread_pool.h"
#include "obs/trace.h"

namespace intcomp {
namespace {

using obs::SpanRecord;

// Rings are process-global, so every test starts from a clean, quiescent
// slate and leaves tracing off for the next one.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTraceSampling(0);
    obs::SetTraceRingCapacity(4096);
    obs::ClearSpans();
    obs::SetTraceSeed(42);
  }
  void TearDown() override {
    obs::SetTraceSampling(0);
    obs::SetTraceRingCapacity(4096);
    obs::ClearSpans();
  }
};

std::vector<SpanRecord> SpansNamed(const std::vector<SpanRecord>& all,
                                   std::string_view name) {
  std::vector<SpanRecord> out;
  for (const SpanRecord& s : all) {
    if (s.name != nullptr && name == s.name) out.push_back(s);
  }
  return out;
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  {
    TRACE_SPAN("never");
    TRACE_SPAN("ever");
  }
  EXPECT_TRUE(obs::SnapshotSpans().empty());
  EXPECT_EQ(obs::DroppedSpans(), 0u);
}

TEST_F(TraceTest, NestedSpansRecordTheParentChain) {
  obs::SetTraceSampling(1);
  {
    TRACE_SPAN("outer");
    {
      TRACE_SPAN("middle");
      { TRACE_SPAN("inner"); }
    }
  }
  obs::SetTraceSampling(0);

  const auto all = obs::SnapshotSpans();
  const auto outer = SpansNamed(all, "outer");
  const auto middle = SpansNamed(all, "middle");
  const auto inner = SpansNamed(all, "inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(middle.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].parent_id, 0u);  // root
  EXPECT_EQ(middle[0].parent_id, outer[0].span_id);
  EXPECT_EQ(inner[0].parent_id, middle[0].span_id);
  // Distinct ids; children close before (or when) the parent does.
  EXPECT_NE(outer[0].span_id, middle[0].span_id);
  EXPECT_NE(middle[0].span_id, inner[0].span_id);
  EXPECT_LE(inner[0].dur_ns, middle[0].dur_ns + 1);
  EXPECT_LE(middle[0].dur_ns, outer[0].dur_ns + 1);
}

TEST_F(TraceTest, ThreadPoolTasksNestUnderTheSubmittersSpan) {
  obs::SetTraceSampling(1);
  constexpr size_t kTasks = 64;
  {
    ThreadPool pool(4);
    TRACE_SPAN("batch_root");
    for (size_t i = 0; i < kTasks; ++i) {
      pool.Submit([](size_t) { TRACE_SPAN("worker_span"); });
    }
    pool.Wait();
  }
  obs::SetTraceSampling(0);

  const auto all = obs::SnapshotSpans();
  const auto roots = SpansNamed(all, "batch_root");
  const auto workers = SpansNamed(all, "worker_span");
  ASSERT_EQ(roots.size(), 1u);
  ASSERT_EQ(workers.size(), kTasks);
  // Every task span parents on the submitting thread's root, no matter
  // which worker stole it.
  for (const SpanRecord& s : workers) {
    EXPECT_EQ(s.parent_id, roots[0].span_id);
  }
  // More than one worker actually recorded (thread_index varies) — the
  // propagation is genuinely cross-thread, not an accident of one worker
  // draining the queue. 64 tasks over 4 workers makes a single-thread
  // schedule implausible but not impossible, so only warn-level-assert.
  std::vector<uint32_t> tids;
  for (const SpanRecord& s : workers) tids.push_back(s.thread_index);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_GE(tids.size(), 1u);
  for (uint32_t tid : tids) EXPECT_NE(tid, roots[0].thread_index);
}

TEST_F(TraceTest, TasksSubmittedOutsideAnySpanAreRoots) {
  obs::SetTraceSampling(1);
  {
    ThreadPool pool(2);
    for (size_t i = 0; i < 8; ++i) {
      pool.Submit([](size_t) { TRACE_SPAN("orphan_span"); });
    }
    pool.Wait();
  }
  obs::SetTraceSampling(0);
  const auto workers = SpansNamed(obs::SnapshotSpans(), "orphan_span");
  ASSERT_EQ(workers.size(), 8u);
  for (const SpanRecord& s : workers) EXPECT_EQ(s.parent_id, 0u);
}

// Records `n` root spans one at a time and returns the keep/drop decision
// sequence, observed through snapshot growth (single-threaded, so the
// quiescence contract holds between spans).
std::vector<bool> SampleDecisions(size_t n) {
  std::vector<bool> decisions;
  size_t seen = 0;
  for (size_t i = 0; i < n; ++i) {
    { TRACE_SPAN("sampled_root"); }
    const size_t now = SpansNamed(obs::SnapshotSpans(), "sampled_root").size();
    decisions.push_back(now > seen);
    seen = now;
  }
  return decisions;
}

TEST_F(TraceTest, SamplingIsDeterministicUnderAFixedSeed) {
  constexpr size_t kRoots = 256;
  obs::SetTraceSeed(123);
  obs::SetTraceSampling(4);
  const std::vector<bool> first = SampleDecisions(kRoots);
  obs::SetTraceSampling(0);
  obs::ClearSpans();

  obs::SetTraceSeed(123);  // re-arm the same sequence
  obs::SetTraceSampling(4);
  const std::vector<bool> second = SampleDecisions(kRoots);
  obs::SetTraceSampling(0);

  EXPECT_EQ(first, second);
  const size_t kept =
      static_cast<size_t>(std::count(first.begin(), first.end(), true));
  // ~1/4 of 256 with generous slack: the point is "samples some, not all".
  EXPECT_GT(kept, kRoots / 16);
  EXPECT_LT(kept, kRoots / 2);

  // A different seed gives a different decision sequence.
  obs::ClearSpans();
  obs::SetTraceSeed(9999);
  obs::SetTraceSampling(4);
  const std::vector<bool> reseeded = SampleDecisions(kRoots);
  obs::SetTraceSampling(0);
  EXPECT_NE(first, reseeded);
}

TEST_F(TraceTest, UnsampledRootsSuppressTheirChildren) {
  // Period 4 with seed 123 drops some roots (previous test); every child
  // of a dropped root must vanish with it — no orphan "child" spans.
  obs::SetTraceSeed(123);
  obs::SetTraceSampling(4);
  constexpr size_t kRoots = 64;
  for (size_t i = 0; i < kRoots; ++i) {
    TRACE_SPAN("suppress_root");
    TRACE_SPAN("suppress_child");
  }
  obs::SetTraceSampling(0);
  const auto all = obs::SnapshotSpans();
  const auto roots = SpansNamed(all, "suppress_root");
  const auto children = SpansNamed(all, "suppress_child");
  ASSERT_GT(roots.size(), 0u);
  ASSERT_LT(roots.size(), kRoots);
  EXPECT_EQ(children.size(), roots.size());
  for (const SpanRecord& c : children) {
    const bool has_parent =
        std::any_of(roots.begin(), roots.end(), [&](const SpanRecord& r) {
          return r.span_id == c.parent_id;
        });
    EXPECT_TRUE(has_parent) << "orphan child span " << c.span_id;
  }
}

TEST_F(TraceTest, RingWrapsAroundKeepingTheNewestSpans) {
  obs::SetTraceRingCapacity(16);
  obs::SetTraceSampling(1);
  constexpr size_t kRoots = 40;
  for (size_t i = 0; i < kRoots; ++i) {
    TRACE_SPAN("wrap_span");
  }
  obs::SetTraceSampling(0);

  const auto spans = SpansNamed(obs::SnapshotSpans(), "wrap_span");
  ASSERT_EQ(spans.size(), 16u);  // capacity, not everything written
  EXPECT_EQ(obs::DroppedSpans(), kRoots - 16);
  // Oldest-first within the ring, and the survivors are the newest 16:
  // span ids are globally increasing, so the kept ids must be the largest.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GT(spans[i].span_id, spans[i - 1].span_id);
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }
  // ClearSpans resets the drop counter too.
  obs::ClearSpans();
  EXPECT_EQ(obs::DroppedSpans(), 0u);
  EXPECT_TRUE(obs::SnapshotSpans().empty());
}

TEST_F(TraceTest, CurrentTraceContextReflectsOpenSpans) {
  obs::SetTraceSampling(1);
  EXPECT_FALSE(obs::CurrentTraceContext().inherited);
  {
    TRACE_SPAN("ctx_root");
    const obs::TraceContext ctx = obs::CurrentTraceContext();
    EXPECT_TRUE(ctx.inherited);
    EXPECT_TRUE(ctx.sampled);
    EXPECT_NE(ctx.parent_id, 0u);
    // Applying the context on the same thread re-parents new spans onto it
    // (what ThreadPool::Enqueue does on a worker).
    {
      obs::ScopedTraceContext scope(ctx);
      { TRACE_SPAN("ctx_child"); }
    }
  }
  obs::SetTraceSampling(0);
  const auto all = obs::SnapshotSpans();
  const auto roots = SpansNamed(all, "ctx_root");
  const auto children = SpansNamed(all, "ctx_child");
  ASSERT_EQ(roots.size(), 1u);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].parent_id, roots[0].span_id);
}

}  // namespace
}  // namespace intcomp
