// Edge-case suite for the service/plan_text grammar. Since the network
// front end (src/net) this grammar parses untrusted bytes, so the corners —
// empty input, single terms, maximum nesting, unknown leaves, overflow-sized
// numbers — are adversarial surface, not just tooling polish.

#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/query.h"
#include "service/plan_text.h"

namespace intcomp {
namespace {

QueryPlan MustParse(std::string_view text) {
  QueryPlan plan;
  const Status st = ParsePlanText(text, &plan);
  EXPECT_TRUE(st.ok()) << "'" << text << "': " << st.ToString();
  return plan;
}

void ExpectReject(std::string_view text) {
  QueryPlan plan;
  const Status st = ParsePlanText(text, &plan);
  EXPECT_FALSE(st.ok()) << "'" << text << "' should not parse";
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
}

// Builds "&(&(...&(0)...))" with `ops` nested operator nodes.
std::string NestedPlan(size_t ops) {
  std::string text;
  for (size_t i = 0; i < ops; ++i) text += "&(";
  text += "0";
  text.append(ops, ')');
  return text;
}

TEST(PlanTextEdgeCases, EmptyAndWhitespaceOnlyPlansAreRejected) {
  ExpectReject("");
  ExpectReject("   ");
  ExpectReject("\t\n");
}

TEST(PlanTextEdgeCases, SingleTermPlans) {
  const QueryPlan p = MustParse("7");
  EXPECT_EQ(p.op, QueryPlan::Op::kLeaf);
  EXPECT_EQ(p.leaf, 7u);

  const QueryPlan spaced = MustParse("  42  ");
  EXPECT_EQ(spaced.op, QueryPlan::Op::kLeaf);
  EXPECT_EQ(spaced.leaf, 42u);

  // Single-child operator nodes are grammatical (one-element plan-list).
  const QueryPlan one_child = MustParse("&(3)");
  EXPECT_EQ(one_child.op, QueryPlan::Op::kAnd);
  ASSERT_EQ(one_child.children.size(), 1u);
  EXPECT_EQ(one_child.children[0].leaf, 3u);
}

TEST(PlanTextEdgeCases, MaximumNestingDepthIsAcceptedOnePastIsNot) {
  const QueryPlan deep = MustParse(NestedPlan(kMaxPlanTextDepth));
  // Walk to the leaf to prove the full spine materialized.
  const QueryPlan* node = &deep;
  size_t ops = 0;
  while (node->op != QueryPlan::Op::kLeaf) {
    ASSERT_EQ(node->children.size(), 1u);
    node = &node->children[0];
    ++ops;
  }
  EXPECT_EQ(ops, kMaxPlanTextDepth);
  EXPECT_EQ(node->leaf, 0u);

  ExpectReject(NestedPlan(kMaxPlanTextDepth + 1));
  // A hostile plan far past the cap must fail cleanly, not by stack
  // overflow in the parser or the plan destructor.
  ExpectReject(NestedPlan(100000));
}

TEST(PlanTextEdgeCases, UnknownTermsRoundTripUninterpreted) {
  // The grammar does not know the index: any numeric leaf parses, and the
  // service rejects out-of-range leaves later. Parsing must preserve the
  // id exactly so the rejection names the right leaf.
  const QueryPlan p = MustParse("&(999999, 0)");
  ASSERT_EQ(p.children.size(), 2u);
  EXPECT_EQ(p.children[0].leaf, 999999u);
  EXPECT_EQ(PlanToText(p), "&(999999,0)");
}

TEST(PlanTextEdgeCases, OverflowSizedLeafIsRejected) {
  ExpectReject("99999999999999999999999999");  // > 2^64
  ExpectReject(std::string(500, '9'));
}

TEST(PlanTextEdgeCases, MalformedSyntaxIsRejected) {
  ExpectReject("&()");       // empty operator node
  ExpectReject("|()");
  ExpectReject("&(1,2");     // unclosed
  ExpectReject("&(1,2))");   // trailing garbage
  ExpectReject("&(1,,2)");   // empty list element
  ExpectReject("&(1 2)");    // missing comma
  ExpectReject("^(1,2)");    // unknown operator
  ExpectReject("1x");        // trailing junk on a leaf
  ExpectReject("-1");        // negative leaf
  ExpectReject("&");         // operator without list
}

TEST(PlanTextEdgeCases, RoundTripPreservesShapeWithoutCanonicalization) {
  for (const char* text :
       {"3", "&(1,2,5)", "&(|(0,1),2)", "|(5,4,3)", "&(2,2,2)",
        "|(&(0,1),&(1,0))"}) {
    SCOPED_TRACE(text);
    const QueryPlan plan = MustParse(text);
    EXPECT_EQ(PlanToText(plan), text);
    // And the rendering re-parses to the same rendering (full inverse).
    EXPECT_EQ(PlanToText(MustParse(PlanToText(plan))), text);
  }
}

TEST(PlanTextEdgeCases, DepthCapCoversMixedOperators) {
  // Alternating &/| nests count against the same cap.
  std::string text;
  for (size_t i = 0; i < kMaxPlanTextDepth + 1; ++i) {
    text += (i % 2 == 0) ? "&(" : "|(";
  }
  text += "0";
  text.append(kMaxPlanTextDepth + 1, ')');
  ExpectReject(text);
}

}  // namespace
}  // namespace intcomp
