// Tests for the cost-model query planner (src/planner, DESIGN.md §5.12):
// per-list codec selection, the query-time strategy chooser, the per-list
// codec tags persisted by the storage layer, and the representation
// signature the service keys cached results by.

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "core/query.h"
#include "core/registry.h"
#include "core/scratch.h"
#include "core/set_ops.h"
#include "engine/thread_pool.h"
#include "index/bitmap_index.h"
#include "planner/list_stats.h"
#include "planner/planner_codec.h"
#include "planner/strategy.h"
#include "service/sharded_index.h"
#include "storage/format.h"
#include "storage/index_writer.h"
#include "storage/mapped_index.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

using planner::CostModel;
using planner::ListStats;
using planner::MeasureListStats;
using planner::PlannerCodec;
using planner::SetOpStrategy;
using storage::MappedIndex;
using storage::MappedIndexOptions;
using storage::ValidateMode;

const Codec& Planner() { return *FindCodec("Planner"); }

// A workload whose lists span both families: dense / clustered lists want a
// bitmap, sparse uniform lists want a list codec, so the planner's per-list
// choice is genuinely mixed.
std::vector<std::vector<uint32_t>> MixedShapeLists(uint64_t domain,
                                                   uint64_t seed) {
  std::vector<std::vector<uint32_t>> lists;
  lists.push_back(GenerateUniform(domain / 3, domain, seed));       // dense
  lists.push_back(GenerateUniform(200, domain, seed + 1));          // sparse
  lists.push_back(GenerateMarkov(domain / 8, domain, 64.0, seed + 2));
  lists.push_back(
      GenerateZipf(std::min<uint64_t>(2000, domain / 4), domain, 1.0,
                   seed + 3));
  lists.push_back(GenerateUniform(domain / 4, domain, seed + 4));
  return lists;
}

TEST(PlannerCodecTest, RegisteredWithABifamilyPool) {
  const auto& codec = static_cast<const PlannerCodec&>(Planner());
  ASSERT_GE(codec.pool().size(), 2u);
  bool has_bitmap = false, has_list = false;
  for (const Codec* c : codec.pool()) {
    (c->Family() == CodecFamily::kBitmap ? has_bitmap : has_list) = true;
  }
  EXPECT_TRUE(has_bitmap);
  EXPECT_TRUE(has_list);
}

// kTrialEncode keeps the smallest candidate image, so per list the planner
// set costs at most any pool member's set plus the one-byte tag — and
// summed over an index, at most the best single whole-index pool codec
// plus one byte per list.
TEST(PlannerCodecTest, TrialEncodeIsSpaceOptimalOverThePool) {
  const auto& codec = static_cast<const PlannerCodec&>(Planner());
  const uint64_t domain = 1u << 16;
  const uint64_t seed = TestSeed(2301);
  const std::vector<std::vector<uint32_t>> workloads[] = {
      {GenerateUniform(40000, domain, seed)},
      {GenerateUniform(300, domain, seed + 1)},
      {GenerateZipf(5000, domain, 1.0, seed + 2)},
      {GenerateMarkov(20000, domain, 32.0, seed + 3)},
  };
  for (const auto& lists : workloads) {
    for (const auto& list : lists) {
      const auto chosen = codec.Encode(list, domain);
      for (const Codec* candidate : codec.pool()) {
        const auto under = candidate->Encode(list, domain);
        EXPECT_LE(chosen->SizeInBytes(), under->SizeInBytes() + 1)
            << "candidate " << candidate->Name();
      }
    }
  }
}

TEST(PlannerCodecTest, IndexSizeAtMostBestSinglePoolCodec) {
  const auto& codec = static_cast<const PlannerCodec&>(Planner());
  const uint64_t domain = 1u << 15;
  const uint64_t seed = TestSeed(2302);
  struct Workload {
    const char* name;
    std::vector<std::vector<uint32_t>> lists;
  } workloads[] = {
      {"uniform",
       {GenerateUniform(domain / 3, domain, seed),
        GenerateUniform(400, domain, seed + 1),
        GenerateUniform(domain / 8, domain, seed + 2)}},
      {"zipf",
       {GenerateZipf(4000, domain, 1.0, seed + 3),
        GenerateZipf(300, domain, 1.0, seed + 4),
        GenerateZipf(8000, domain, 1.0, seed + 5)}},
      {"markov",
       {GenerateMarkov(domain / 4, domain, 32.0, seed + 6),
        GenerateMarkov(600, domain, 8.0, seed + 7),
        GenerateMarkov(domain / 10, domain, 64.0, seed + 8)}},
  };
  for (const auto& w : workloads) {
    size_t planner_total = 0, num_sets = 0;
    for (const auto& list : w.lists) {
      planner_total += codec.Encode(list, domain)->SizeInBytes();
      ++num_sets;
    }
    size_t best_single = SIZE_MAX;
    for (const Codec* candidate : codec.pool()) {
      size_t total = 0;
      for (const auto& list : w.lists) {
        total += candidate->Encode(list, domain)->SizeInBytes();
      }
      best_single = std::min(best_single, total);
    }
    // One tag byte per list is the planner's only overhead.
    EXPECT_LE(planner_total, best_single + num_sets) << w.name;
  }
}

// The planner index must answer every plan bit-identically to a fixed
// single-codec index over the same lists, both through serial EvaluatePlan
// and through the sharded service.
TEST(PlannerCodecTest, BitIdenticalToSingleCodecEvaluation) {
  const uint64_t domain = 1u << 14;
  const auto lists = MixedShapeLists(domain, TestSeed(2303));

  const std::vector<QueryPlan> plans = {
      QueryPlan::Leaf(1),
      QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(2)}),
      QueryPlan::Or({QueryPlan::Leaf(1), QueryPlan::Leaf(3),
                     QueryPlan::Leaf(4)}),
      QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(2),
                      QueryPlan::Leaf(4)}),
      QueryPlan::Or(
          {QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}),
           QueryPlan::And({QueryPlan::Leaf(2), QueryPlan::Leaf(3)})}),
  };

  const Codec& reference = *FindCodec("Roaring");
  ShardedIndex planner_index =
      ShardedIndex::Build(Planner(), lists, domain, 3);
  ShardedIndex reference_index =
      ShardedIndex::Build(reference, lists, domain, 3);

  ThreadPool pool(4);
  IndexService planner_service(&planner_index, &pool, {});
  IndexService reference_service(&reference_index, &pool, {});

  // Serial single-shard evaluation as the ground truth.
  ShardedIndex planner_flat = ShardedIndex::Build(Planner(), lists, domain, 1);
  ShardedIndex reference_flat =
      ShardedIndex::Build(reference, lists, domain, 1);

  for (const QueryPlan& plan : plans) {
    const std::vector<uint32_t> truth =
        EvaluatePlan(reference, plan, reference_flat.ShardSets(0));
    EXPECT_EQ(EvaluatePlan(Planner(), plan, planner_flat.ShardSets(0)), truth);

    std::vector<uint32_t> via_planner, via_reference;
    ASSERT_TRUE(planner_service.Query(plan, &via_planner).ok());
    ASSERT_TRUE(reference_service.Query(plan, &via_reference).ok());
    EXPECT_EQ(via_planner, truth);
    EXPECT_EQ(via_reference, truth);
  }
}

TEST(PlannerCodecTest, DeserializeRejectsBadTagAndEmptyImage) {
  const Codec& codec = Planner();
  const auto list = RandomSortedList(500, 1u << 14, TestSeed(2304));
  const auto set = codec.Encode(list, 1u << 14);
  std::vector<uint8_t> image;
  codec.Serialize(*set, &image);

  EXPECT_FALSE(codec.DeserializeChecked({image.data(), 0}, 1u << 14).ok());

  std::vector<uint8_t> bad = image;
  bad[0] = 0xFF;  // pool has < 255 candidates, so the tag is out of range
  EXPECT_FALSE(codec.DeserializeChecked(bad, 1u << 14).ok());

  const auto ok = codec.DeserializeChecked(image, 1u << 14);
  ASSERT_TRUE(ok.ok());
  std::vector<uint32_t> decoded;
  codec.Decode(*ok.value(), &decoded);
  EXPECT_EQ(decoded, list);
}

TEST(PlannerCodecTest, StatsSelectionFollowsDensityAndRuns) {
  const Codec& roaring = *FindCodec("Roaring");
  const Codec& simdpfd = *FindCodec("SIMDPforDelta*");
  const PlannerCodec stats_planner({&roaring, &simdpfd},
                                   PlannerCodec::Selection::kStats);
  const uint64_t domain = 1u << 16;
  const uint64_t seed = TestSeed(2305);

  const auto dense = GenerateUniform(domain / 2, domain, seed);
  const auto sparse = GenerateUniform(100, domain, seed + 1);
  // Sparse overall but strongly clustered: long runs still favor a
  // run-length-friendly bitmap under the §7.1 rules.
  const auto clustered = GenerateMarkov(domain / 20, domain, 512.0, seed + 2);

  EXPECT_EQ(
      stats_planner.pool()[stats_planner.StatsChoice(
          MeasureListStats(dense, domain))]->Family(),
      CodecFamily::kBitmap);
  EXPECT_EQ(
      stats_planner.pool()[stats_planner.StatsChoice(
          MeasureListStats(sparse, domain))]->Family(),
      CodecFamily::kInvertedList);
  EXPECT_EQ(
      stats_planner.pool()[stats_planner.StatsChoice(
          MeasureListStats(clustered, domain))]->Family(),
      CodecFamily::kBitmap);

  // Selection mode never changes what decodes back out.
  for (const auto* list : {&dense, &sparse, &clustered}) {
    const auto set = stats_planner.Encode(*list, domain);
    std::vector<uint32_t> decoded;
    stats_planner.Decode(*set, &decoded);
    EXPECT_EQ(decoded, *list);
  }
}

// ------------------------------------------------------------ strategy

TEST(StrategyTest, ParsesAllNames) {
  SetOpStrategy s;
  ASSERT_TRUE(planner::ParseSetOpStrategy("auto", &s));
  EXPECT_EQ(s, SetOpStrategy::kAuto);
  ASSERT_TRUE(planner::ParseSetOpStrategy("compressed", &s));
  EXPECT_EQ(s, SetOpStrategy::kCompressed);
  ASSERT_TRUE(planner::ParseSetOpStrategy("merge", &s));
  EXPECT_EQ(s, SetOpStrategy::kDecodeMerge);
  ASSERT_TRUE(planner::ParseSetOpStrategy("gallop", &s));
  EXPECT_EQ(s, SetOpStrategy::kGallopProbe);
  EXPECT_FALSE(planner::ParseSetOpStrategy("svs", &s));
}

// Every strategy computes the same intersection; the chooser only moves
// cost, never the result — including kCompressed forced onto a cross-codec
// pair, which degrades to a probe.
TEST(StrategyTest, AllStrategiesComputeTheSameIntersection) {
  const uint64_t domain = 1u << 14;
  const uint64_t seed = TestSeed(2306);
  const auto a = RandomSortedList(3000, domain, seed);
  const auto b = RandomSortedList(400, domain, seed + 1);
  const auto expected = RefIntersect(a, b);

  const CostModel& model = CostModel::Default();
  const Codec& roaring = *FindCodec("Roaring");
  const Codec& pef = *FindCodec("PEF");

  struct Pair {
    const Codec* ca;
    const Codec* cb;
  } pairs[] = {{&roaring, &roaring}, {&roaring, &pef}, {&pef, &roaring}};
  for (const Pair& p : pairs) {
    const auto sa = p.ca->Encode(a, domain);
    const auto sb = p.cb->Encode(b, domain);
    const TaggedSet ta{p.ca, sa.get()};
    const TaggedSet tb{p.cb, sb.get()};
    for (SetOpStrategy strategy :
         {SetOpStrategy::kAuto, SetOpStrategy::kCompressed,
          SetOpStrategy::kDecodeMerge, SetOpStrategy::kGallopProbe}) {
      std::vector<uint32_t> out;
      planner::PlannedIntersect(ta, tb, strategy, model, &out);
      EXPECT_EQ(out, expected)
          << p.ca->Name() << " x " << p.cb->Name() << " under "
          << planner::SetOpStrategyName(strategy);
    }
  }
}

TEST(StrategyTest, ChooserPicksApplicableStrategies) {
  const uint64_t domain = 1u << 14;
  const auto a = RandomSortedList(2000, domain, TestSeed(2307));
  const auto b = RandomSortedList(2200, domain, TestSeed(2308));
  const CostModel& model = CostModel::Default();
  const Codec& roaring = *FindCodec("Roaring");
  const Codec& pef = *FindCodec("PEF");
  const auto sa = roaring.Encode(a, domain);
  const auto sb_same = roaring.Encode(b, domain);
  const auto sb_cross = pef.Encode(b, domain);

  // Cross-codec pairs can never pick the shared-codec compressed path.
  EXPECT_NE(planner::ChoosePairStrategy({&roaring, sa.get()},
                                        {&pef, sb_cross.get()}, model),
            SetOpStrategy::kCompressed);
  // And the chooser never returns the sentinel.
  EXPECT_NE(planner::ChoosePairStrategy({&roaring, sa.get()},
                                        {&roaring, sb_same.get()}, model),
            SetOpStrategy::kAuto);
}

TEST(StrategyTest, PlannedIntersectSetsMatchesReference) {
  const uint64_t domain = 1u << 13;
  const uint64_t seed = TestSeed(2309);
  const auto a = RandomSortedList(2500, domain, seed);
  const auto b = RandomSortedList(900, domain, seed + 1);
  const auto c = RandomSortedList(1400, domain, seed + 2);
  const auto expected = RefIntersect(RefIntersect(a, b), c);

  const Codec& roaring = *FindCodec("Roaring");
  const Codec& pef = *FindCodec("PEF");
  const auto sa = roaring.Encode(a, domain);
  const auto sb = pef.Encode(b, domain);
  const auto sc = Planner().Encode(c, domain);
  const std::vector<TaggedSet> sets = {
      {&roaring, sa.get()}, {&pef, sb.get()}, {&Planner(), sc.get()}};

  ScratchArena arena;
  for (SetOpStrategy strategy :
       {SetOpStrategy::kAuto, SetOpStrategy::kDecodeMerge,
        SetOpStrategy::kGallopProbe}) {
    std::vector<uint32_t> out;
    planner::PlannedIntersectSets(sets, strategy, CostModel::Default(),
                                  &arena, &out);
    EXPECT_EQ(out, expected) << planner::SetOpStrategyName(strategy);
  }
}

// ------------------------------------------------- storage + signature

TEST(PlannerStorageTest, RoundtripPreservesTagsAndSignature) {
  const uint64_t domain = 1u << 14;
  const auto lists = MixedShapeLists(domain, TestSeed(2310));
  const ShardedIndex index = ShardedIndex::Build(Planner(), lists, domain, 3);

  // A genuinely mixed index gets a digest-qualified signature.
  const std::string signature(index.CodecSignature());
  ASSERT_NE(signature.find('#'), std::string::npos) << signature;

  std::vector<uint8_t> image;
  ASSERT_TRUE(storage::WriteIndexImage(index, &image).ok());

  for (ValidateMode mode : {ValidateMode::kEager, ValidateMode::kLazy}) {
    MappedIndexOptions options;
    options.validate = mode;
    auto opened = MappedIndex::OpenBorrowed(image, options);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    const MappedIndex& mapped = *opened.value();

    // The persisted tags reproduce the in-RAM signature exactly.
    EXPECT_EQ(mapped.CodecSignature(), signature);
    for (size_t s = 0; s < index.NumShards(); ++s) {
      for (size_t l = 0; l < index.NumLists(); ++l) {
        EXPECT_EQ(mapped.ListCodecName(s, l),
                  Planner().SetCodecName(*index.ShardSets(s)[l]));
      }
    }

    // And the mapped index answers queries identically.
    ThreadPool pool(2);
    IndexService from_ram(&index, &pool, {});
    IndexService from_disk(&mapped, &pool, {});
    const QueryPlan plan = QueryPlan::Or(
        {QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(3)}),
         QueryPlan::Leaf(1)});
    std::vector<uint32_t> ram_rows, disk_rows;
    ASSERT_TRUE(from_ram.Query(plan, &ram_rows).ok());
    ASSERT_TRUE(from_disk.Query(plan, &disk_rows).ok());
    EXPECT_EQ(disk_rows, ram_rows);
  }
}

TEST(PlannerStorageTest, FixedCodecContainersCarryNoTagSection) {
  const uint64_t domain = 1u << 12;
  const auto lists = MixedShapeLists(domain, TestSeed(2311));
  const Codec& roaring = *FindCodec("Roaring");
  const ShardedIndex index = ShardedIndex::Build(roaring, lists, domain, 2);
  EXPECT_EQ(index.CodecSignature(), "Roaring");

  std::vector<uint8_t> image;
  ASSERT_TRUE(storage::WriteIndexImage(index, &image).ok());
  auto opened = MappedIndex::OpenBorrowed(image);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value()->CodecSignature(), "Roaring");
  EXPECT_EQ(opened.value()->ListCodecName(0, 0), "Roaring");
}

TEST(PlannerStorageTest, OpaqueSectionMayNotShadowListCodecs) {
  const uint64_t domain = 1u << 10;
  const auto lists = MixedShapeLists(domain, TestSeed(2312));
  const ShardedIndex index =
      ShardedIndex::Build(*FindCodec("Roaring"), lists, domain, 2);
  std::vector<uint8_t> image;
  storage::VectorSink sink(&image);
  storage::IndexWriter writer(&sink);
  ASSERT_TRUE(writer.WriteShardedIndex(index).ok());
  const uint8_t junk[4] = {1, 2, 3, 4};
  EXPECT_FALSE(writer.AppendOpaqueSection(storage::kSectionListCodecs, junk)
                   .ok());
}

// Byte-patching helpers for the malformed-section test.
uint32_t ReadU32At(const std::vector<uint8_t>& b, size_t off) {
  uint32_t v;
  std::memcpy(&v, b.data() + off, 4);
  return v;
}
uint64_t ReadU64At(const std::vector<uint8_t>& b, size_t off) {
  uint64_t v;
  std::memcpy(&v, b.data() + off, 8);
  return v;
}
void WriteU32At(std::vector<uint8_t>* b, size_t off, uint32_t v) {
  std::memcpy(b->data() + off, &v, 4);
}

TEST(PlannerStorageTest, MalformedListCodecsSectionFailsClosed) {
  const uint64_t domain = 1u << 13;
  const auto lists = MixedShapeLists(domain, TestSeed(2313));
  const ShardedIndex index = ShardedIndex::Build(Planner(), lists, domain, 2);
  std::vector<uint8_t> image;
  ASSERT_TRUE(storage::WriteIndexImage(index, &image).ok());

  // Locate the list-codecs section through the directory.
  const uint64_t dir_offset = ReadU64At(image, 24);
  const uint32_t dir_entries = ReadU32At(image, 32);
  size_t section_offset = 0, entry_offset = 0;
  for (uint32_t i = 0; i < dir_entries; ++i) {
    const size_t e = static_cast<size_t>(dir_offset) +
                     i * storage::kDirEntryBytes;
    if (ReadU32At(image, e) == storage::kSectionListCodecs) {
      entry_offset = e;
      section_offset = static_cast<size_t>(ReadU64At(image, e + 8));
    }
  }
  ASSERT_NE(section_offset, 0u) << "planner container should carry tags";

  // Plain corruption inside the section: caught by the section CRC.
  {
    std::vector<uint8_t> bad = image;
    bad[section_offset] ^= 0x01;
    EXPECT_FALSE(MappedIndex::OpenBorrowed(bad).ok());
  }

  // Forged corruption: zero the name count and re-patch every enclosing
  // checksum, so only the section's own structural validation can object.
  {
    std::vector<uint8_t> bad = image;
    WriteU32At(&bad, section_offset, 0);
    const uint64_t section_len = ReadU64At(bad, entry_offset + 16);
    WriteU32At(&bad, entry_offset + 24,
               Crc32Of({bad.data() + section_offset,
                        static_cast<size_t>(section_len)}));
    const uint64_t dir_len =
        static_cast<uint64_t>(dir_entries) * storage::kDirEntryBytes;
    WriteU32At(&bad, 36,
               Crc32Of({bad.data() + dir_offset,
                        static_cast<size_t>(dir_len)}));
    WriteU32At(&bad, storage::kHeaderCrcOffset,
               Crc32Of({bad.data(), storage::kHeaderCrcOffset}));
    const auto opened = MappedIndex::OpenBorrowed(bad);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kCorruptData);
  }
}

// --------------------------------------------------- index-layer census

TEST(FamilyCensusTest, AdaptiveCodecsReportThePerSetSplit) {
  // Column: value 0 covers most rows (dense set), the rest are rare.
  const uint32_t cardinality = 5;
  std::vector<uint32_t> column(20000, 0);
  for (size_t i = 0; i < column.size(); ++i) {
    if (i % 97 == 0) column[i] = 1 + static_cast<uint32_t>(i % 4);
  }

  const BitmapIndex hybrid_index =
      BitmapIndex::Build(*FindCodec("Hybrid"), column, cardinality);
  const auto hybrid_counts = hybrid_index.EffectiveFamilies();
  EXPECT_EQ(hybrid_counts.bitmap + hybrid_counts.inverted_list, cardinality);
  EXPECT_GE(hybrid_counts.bitmap, 1u);         // the dense value-0 set
  EXPECT_GE(hybrid_counts.inverted_list, 1u);  // the rare values

  // Fixed codecs answer with their static family for every set.
  const BitmapIndex roaring_index =
      BitmapIndex::Build(*FindCodec("Roaring"), column, cardinality);
  EXPECT_EQ(roaring_index.EffectiveFamilies().bitmap, cardinality);
  const BitmapIndex vb_index =
      BitmapIndex::Build(*FindCodec("VB"), column, cardinality);
  EXPECT_EQ(vb_index.EffectiveFamilies().inverted_list, cardinality);
}

TEST(CodecSignatureTest, StableAcrossBuildsAndSensitiveToTags) {
  const uint64_t domain = 1u << 13;
  const auto lists = MixedShapeLists(domain, TestSeed(2314));
  const ShardedIndex a = ShardedIndex::Build(Planner(), lists, domain, 2);
  const ShardedIndex b = ShardedIndex::Build(Planner(), lists, domain, 2);
  EXPECT_EQ(a.CodecSignature(), b.CodecSignature());

  // All-sparse lists pick a different tag mix than the mixed workload.
  std::vector<std::vector<uint32_t>> sparse;
  for (int i = 0; i < 5; ++i) {
    sparse.push_back(GenerateUniform(50, domain, TestSeed(2315) + i));
  }
  const ShardedIndex c = ShardedIndex::Build(Planner(), sparse, domain, 2);
  EXPECT_NE(a.CodecSignature(), c.CodecSignature());
}

}  // namespace
}  // namespace intcomp
