// Crash-recovery fault campaign for the mutable index (DESIGN.md §5.11).
//
// The property under test: for EVERY crash point in the WAL + compaction
// operation stream, reopening the directory recovers an effective index
// equal to the state just before or just after the interrupted operation —
// never a torn mix, never an invented state, never kCorruptData (that code
// is reserved for tampering a crash cannot produce).
//
// Three campaigns, all seeded (override with INTCOMP_FAULT_SEED):
//   * CrashAtOpCampaign      — crash at op K across every storage site,
//                              sweeping K per schedule;
//   * CompactionCrashCampaign — crashes confined to the compaction commit
//                              protocol's sites (container write, renames,
//                              rotation), the two-step window in particular;
//   * TransientRatesCampaign — seeded transient faults everywhere except
//                              fsync; every operation either succeeds after
//                              bounded retry or fails cleanly, and recovery
//                              equals the successful prefix exactly.
//
// The acceptance rule mirrors the durability contract. All ops before the
// crash succeeded and are recovered. The crashing op itself is ambiguous in
// exactly one case: its WAL record landed (write() returned) but the fsync
// after it was the injected failure — then the op reported failure yet
// recovers as applied. So: recovered == model[ok_ops] or (when the first
// failed op was an update) model[ok_ops] + that update. A crashed
// compaction must recover model[ok_ops] exactly — it never changes the
// effective index.
//
// Runs ~200 schedules by default; CI's ASan fault-matrix job passes
// --schedules=10000.

#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/prng.h"
#include "core/registry.h"
#include "service/delta_overlay.h"
#include "service/sharded_index.h"
#include "storage/live_index.h"
#include "test_util.h"

namespace intcomp {
namespace {

using storage::LiveIndex;

int g_schedules = 200;

// ----------------------------------------------------------------- helpers

std::string CampaignDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void WipeDir(const std::string& dir) {
  for (const char* f : {LiveIndex::kIndexFile, LiveIndex::kWalFile,
                        LiveIndex::kIndexTmpFile, LiveIndex::kWalTmpFile}) {
    std::remove((dir + "/" + f).c_str());
  }
}

std::vector<uint32_t> ListRows(const IndexSnapshot& snap, uint32_t list) {
  std::vector<uint32_t> out, local;
  const std::vector<size_t> leaves = {list};
  const ShardRouter& router = snap.Router();
  for (size_t s = 0; s < snap.NumShards(); ++s) {
    auto sets = snap.PlanSets(s, leaves);
    if (!sets.ok()) {
      ADD_FAILURE() << "PlanSets: " << sets.status().ToString();
      return out;
    }
    local.clear();
    snap.codec().Decode(*sets.value()[list], &local);
    for (uint32_t r : local) {
      out.push_back(r + static_cast<uint32_t>(router.Begin(s)));
    }
  }
  return out;
}

// One scripted operation of a schedule.
struct PlannedOp {
  enum Kind { kInsert, kRemove, kCompact, kSync } kind;
  uint32_t list = 0;
  std::vector<uint32_t> rows;
};

struct Schedule {
  uint64_t num_rows = 256;
  size_t num_shards = 2;
  std::vector<std::vector<uint32_t>> base;   // initial lists
  std::vector<PlannedOp> ops;
};

Schedule MakeSchedule(Prng* rng) {
  Schedule s;
  const size_t num_lists = 3;
  for (size_t l = 0; l < num_lists; ++l) {
    s.base.push_back(RandomSortedList(10 + rng->NextBounded(40), s.num_rows,
                                      rng->Next()));
  }
  const size_t num_ops = 6 + rng->NextBounded(6);
  const size_t compact_at = 1 + rng->NextBounded(num_ops - 1);
  for (size_t i = 0; i < num_ops; ++i) {
    if (i == compact_at) {
      s.ops.push_back(PlannedOp{PlannedOp::kCompact, 0, {}});
      continue;
    }
    PlannedOp op;
    const uint64_t pick = rng->NextBounded(8);
    if (pick == 0) {
      op.kind = PlannedOp::kSync;
    } else {
      op.kind = pick < 3 ? PlannedOp::kRemove : PlannedOp::kInsert;
      op.list = static_cast<uint32_t>(rng->NextBounded(num_lists));
      op.rows = RandomSortedList(1 + rng->NextBounded(12), s.num_rows,
                                 rng->Next());
    }
    s.ops.push_back(std::move(op));
  }
  return s;
}

// Applies one update to the reference model (LiveIndex set semantics:
// insert = union, remove = difference).
void ApplyToModel(std::vector<std::vector<uint32_t>>* model,
                  const PlannedOp& op) {
  ListDelta delta;
  if (op.kind == PlannedOp::kInsert) {
    delta.inserts = op.rows;
  } else {
    delta.deletes = op.rows;
  }
  std::vector<uint32_t> out;
  ApplyDelta((*model)[op.list], delta, &out);
  (*model)[op.list] = out;
}

// Runs one schedule against `dir`: opens cleanly, calls `arm` to install
// the fault mode, executes the op stream, destroys the live object with
// the injector still armed (the process "dies"), then disarms, reopens,
// and checks the acceptance rule. Returns false (with gtest failures
// recorded) if recovery broke the contract.
bool RunAndCheck(const std::string& dir, const Schedule& s,
                 uint64_t schedule_id, const std::function<void()>& arm) {
  std::vector<std::vector<uint32_t>> model = s.base;
  // State if the first failed op had actually applied (the fsync-ambiguous
  // case); only meaningful when that op was an update.
  std::optional<std::vector<std::vector<uint32_t>>> after_first_failure;

  {
    auto live = LiveIndex::Open(dir);
    if (!live.ok()) {
      ADD_FAILURE() << "schedule " << schedule_id
                    << ": open failed: " << live.status().ToString();
      return false;
    }
    arm();
    for (const PlannedOp& op : s.ops) {
      Status st = Status::Ok();
      switch (op.kind) {
        case PlannedOp::kInsert:
          st = live.value()->Insert(op.list, op.rows);
          break;
        case PlannedOp::kRemove:
          st = live.value()->Remove(op.list, op.rows);
          break;
        case PlannedOp::kCompact:
          st = live.value()->Compact();
          break;
        case PlannedOp::kSync:
          st = live.value()->Sync();
          break;
      }
      if (st.ok()) {
        if (op.kind == PlannedOp::kInsert || op.kind == PlannedOp::kRemove) {
          ApplyToModel(&model, op);
        }
      } else if (!after_first_failure.has_value()) {
        auto candidate = model;
        if (op.kind == PlannedOp::kInsert || op.kind == PlannedOp::kRemove) {
          ApplyToModel(&candidate, op);
        }
        after_first_failure = std::move(candidate);
      }
    }
    // The "process dies": the live object is destroyed with the injector
    // still armed, so no destructor cleanup can repair torn state.
  }
  fault::FaultInjector::Global().Disarm();

  auto recovered = LiveIndex::Open(dir);
  if (!recovered.ok()) {
    ADD_FAILURE() << "schedule " << schedule_id
                  << ": recovery failed: " << recovered.status().ToString();
    return false;
  }
  auto snap = recovered.value()->Snapshot();
  bool matches_model = true;
  bool matches_candidate = after_first_failure.has_value();
  for (uint32_t l = 0; l < s.base.size(); ++l) {
    const std::vector<uint32_t> got = ListRows(*snap, l);
    if (got != model[l]) matches_model = false;
    if (matches_candidate && got != (*after_first_failure)[l]) {
      matches_candidate = false;
    }
  }
  if (!matches_model && !matches_candidate) {
    ADD_FAILURE() << "schedule " << schedule_id
                  << ": recovered state is neither pre- nor post-crash";
    return false;
  }
  // The recovered index must be fully usable: accept an update and keep it.
  EXPECT_TRUE(recovered.value()
                  ->Insert(0, std::vector<uint32_t>{0, 1, 2})
                  .ok())
      << "schedule " << schedule_id;
  EXPECT_TRUE(recovered.value()->Close().ok()) << "schedule " << schedule_id;
  return true;
}

// Seeds a fresh directory with the schedule's base index (no faults).
bool SeedDir(const std::string& dir, const Schedule& s) {
  WipeDir(dir);
  const Codec& codec = *FindCodec("Roaring");
  auto live = LiveIndex::Create(
      dir, ShardedIndex::Build(codec, s.base, s.num_rows, s.num_shards));
  if (!live.ok()) {
    ADD_FAILURE() << "seed failed: " << live.status().ToString();
    return false;
  }
  EXPECT_TRUE(live.value()->Close().ok());
  return true;
}

// -------------------------------------------------------------- campaigns

TEST(RecoveryFaultTest, CrashAtOpCampaign) {
  fault::ScopedDisarm disarm;
  const uint64_t base_seed = fault::EnvSeed(TestSeed(0xfa57));
  const std::string dir = CampaignDir("recovery_crash_campaign");
  for (int i = 0; i < g_schedules; ++i) {
    NoteSeed(base_seed + static_cast<uint64_t>(i));
    Prng rng(base_seed + static_cast<uint64_t>(i));
    const Schedule s = MakeSchedule(&rng);
    if (!SeedDir(dir, s)) return;
    // Crash somewhere inside the op stream's injectable footprint. A large
    // K doubles as a no-crash control run.
    const uint64_t k = 1 + rng.NextBounded(40);
    const uint64_t crash_seed = rng.Next();
    if (!RunAndCheck(dir, s, static_cast<uint64_t>(i), [&] {
          fault::FaultInjector::Global().ArmCrashAtOp(k, crash_seed);
        })) {
      return;
    }
  }
}

TEST(RecoveryFaultTest, CompactionCrashCampaign) {
  fault::ScopedDisarm disarm;
  const uint64_t base_seed = fault::EnvSeed(TestSeed(0xc0a7));
  const std::string dir = CampaignDir("recovery_compact_campaign");
  const uint32_t commit_sites =
      fault::SiteBit(fault::Site::kFileCreate) |
      fault::SiteBit(fault::Site::kFileAppend) |
      fault::SiteBit(fault::Site::kFileWriteAt) |
      fault::SiteBit(fault::Site::kFileFlush) |
      fault::SiteBit(fault::Site::kRename) |
      fault::SiteBit(fault::Site::kMapOpen) |
      fault::SiteBit(fault::Site::kCompactionStep);
  for (int i = 0; i < g_schedules; ++i) {
    NoteSeed(base_seed + static_cast<uint64_t>(i));
    Prng rng(base_seed + static_cast<uint64_t>(i));
    const Schedule s = MakeSchedule(&rng);
    if (!SeedDir(dir, s)) return;
    // Only the commit protocol's sites are armed, so K sweeps the container
    // write, both renames, and the WAL rotation — the two-step window.
    const uint64_t k = 1 + rng.NextBounded(30);
    const uint64_t crash_seed = rng.Next();
    if (!RunAndCheck(dir, s, static_cast<uint64_t>(i), [&] {
          fault::FaultInjector::Global().ArmCrashAtOp(k, crash_seed,
                                                      commit_sites);
        })) {
      return;
    }
  }
}

TEST(RecoveryFaultTest, TransientRatesCampaign) {
  fault::ScopedDisarm disarm;
  const uint64_t base_seed = fault::EnvSeed(TestSeed(0x7a27));
  const std::string dir = CampaignDir("recovery_transient_campaign");
  // Everything except kWalSync: a transient fsync failure after a landed
  // write() makes the op's durability ambiguous, which is the crash
  // campaigns' job; here every op must either succeed or fail cleanly.
  const uint32_t sites =
      fault::kAllSites & ~fault::SiteBit(fault::Site::kWalSync);
  fault::Rates rates;
  rates.transient = 0.15;
  const int schedules = std::max(10, g_schedules / 4);
  for (int i = 0; i < schedules; ++i) {
    NoteSeed(base_seed + static_cast<uint64_t>(i));
    Prng rng(base_seed + static_cast<uint64_t>(i));
    const Schedule s = MakeSchedule(&rng);
    if (!SeedDir(dir, s)) return;
    const uint64_t rate_seed = rng.Next();
    if (!RunAndCheck(dir, s, static_cast<uint64_t>(i), [&] {
          fault::FaultInjector::Global().ArmRates(rates, rate_seed, sites);
        })) {
      return;
    }
  }
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg.rfind("--schedules=", 0) == 0) {
      value = arg.c_str() + std::strlen("--schedules=");
    } else if (arg == "--schedules" && i + 1 < argc) {
      value = argv[++i];
    }
    if (value != nullptr) {
      char* end = nullptr;
      const long parsed = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || parsed <= 0) {
        std::fprintf(stderr, "invalid --schedules value: %s\n", value);
        return 2;
      }
      intcomp::g_schedules = static_cast<int>(parsed);
    }
  }
  return RUN_ALL_TESTS();
}
