// Edge-case and stress tests that target specific machinery: deep query
// plans, cursor reuse patterns, Roaring's fully-dense chunks, structural
// validation of Deserialize, and the Hybrid decision boundary.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "bitmap/roaring.h"
#include "core/hybrid.h"
#include "core/query.h"
#include "core/registry.h"
#include "invlist/blocked_list.h"
#include "invlist/groupvb.h"
#include "invlist/vb.h"
#include "test_util.h"

namespace intcomp {
namespace {

TEST(QueryPlanTest, DeepNesting) {
  // ((A u B) n (C u D)) u (E n F) — evaluated against reference algebra,
  // for one bitmap and one list codec.
  std::vector<std::vector<uint32_t>> lists;
  for (uint64_t s = 0; s < 6; ++s) {
    lists.push_back(RandomSortedList(2000 + 531 * s, 1 << 16, 70 + s));
  }
  auto expected = RefUnion(
      RefIntersect(RefUnion(lists[0], lists[1]), RefUnion(lists[2], lists[3])),
      RefIntersect(lists[4], lists[5]));
  auto plan = QueryPlan::Or(
      {QueryPlan::And(
           {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}),
            QueryPlan::Or({QueryPlan::Leaf(2), QueryPlan::Leaf(3)})}),
       QueryPlan::And({QueryPlan::Leaf(4), QueryPlan::Leaf(5)})});
  for (const char* name : {"Roaring", "SIMDBP128*", "WAH", "Hybrid"}) {
    const Codec& codec = *FindCodec(name);
    std::vector<std::unique_ptr<CompressedSet>> sets;
    std::vector<const CompressedSet*> ptrs;
    for (const auto& l : lists) {
      sets.push_back(codec.Encode(l, 1 << 16));
      ptrs.push_back(sets.back().get());
    }
    EXPECT_EQ(EvaluatePlan(codec, plan, ptrs), expected) << name;
  }
}

TEST(QueryPlanTest, SingleLeafUnderEachOperator) {
  const Codec& codec = *FindCodec("VB");
  auto list = RandomSortedList(500, 1 << 14, 80);
  auto set = codec.Encode(list, 1 << 14);
  const CompressedSet* ptr = set.get();
  EXPECT_EQ(EvaluatePlan(codec, QueryPlan::Leaf(0), {&ptr, 1}), list);
  EXPECT_EQ(EvaluatePlan(codec, QueryPlan::And({QueryPlan::Leaf(0)}),
                         {&ptr, 1}),
            list);
  EXPECT_EQ(EvaluatePlan(codec, QueryPlan::Or({QueryPlan::Leaf(0)}),
                         {&ptr, 1}),
            list);
}

TEST(BlockedCursorTest, RepeatedAndDenseTargets) {
  auto values = RandomSortedList(10000, 1 << 18, 81);
  VbCodec codec;
  auto set = codec.Encode(values, 1 << 18);
  const auto& s = static_cast<const BlockedSet<VbTraits>&>(*set);
  BlockedCursor<VbTraits> cursor(s);
  uint32_t v;
  // Same target repeatedly must keep returning the same answer.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cursor.NextGEQ(values[5000], &v));
    EXPECT_EQ(v, values[5000]);
  }
  // Every single value in ascending order (dense probing).
  BlockedCursor<VbTraits> c2(s);
  for (uint32_t x : values) {
    ASSERT_TRUE(c2.NextGEQ(x, &v));
    EXPECT_EQ(v, x);
  }
}

TEST(RoaringDenseTest, FullChunk) {
  // A completely full 2^16 chunk plus neighbors.
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 65536; ++i) values.push_back(65536 + i);
  values.push_back(5);
  values.push_back(3 * 65536 + 9);
  std::sort(values.begin(), values.end());
  RoaringCodec codec;
  auto set = codec.Encode(values, uint64_t{1} << 32);
  std::vector<uint32_t> decoded;
  codec.Decode(*set, &decoded);
  EXPECT_EQ(decoded, values);
  // Intersect the full chunk with a sparse probe inside it.
  std::vector<uint32_t> probe = {65536 + 17, 2 * 65536 - 1, 3 * 65536 + 9};
  std::vector<uint32_t> out;
  codec.IntersectWithList(*set, probe, &out);
  EXPECT_EQ(out, probe);
}

TEST(DeserializeValidationTest, RejectsStructuralGarbage) {
  const auto list = RandomSortedList(1000, 1 << 20, 90);
  for (const Codec* codec : AllCodecs()) {
    SCOPED_TRACE(std::string(codec->Name()));
    auto set = codec->Encode(list, 1 << 20);
    std::vector<uint8_t> image;
    codec->Serialize(*set, &image);
    // Empty buffer.
    EXPECT_EQ(codec->Deserialize(image.data(), 0), nullptr);
    // Cut in the middle of the header.
    EXPECT_EQ(codec->Deserialize(image.data(), 3), nullptr);
    // Length field claiming more data than present: truncate payload.
    if (image.size() > 16) {
      EXPECT_EQ(codec->Deserialize(image.data(), image.size() / 2), nullptr);
    }
  }
}

TEST(DeserializeCheckedTest, EveryPrefixOfEveryCodecIsContained) {
  // Registry-wide truncation sweep: serialize one list per codec (and
  // extension), then present EVERY proper prefix of the image to
  // DeserializeChecked. Each prefix must either be rejected with a non-OK
  // Status or produce a set whose decode is a well-formed sorted list
  // inside the domain — and must never crash (the ASan/UBSan CI jobs give
  // that teeth). A modest domain keeps the Bitset image, and therefore the
  // quadratic sweep, small.
  constexpr uint64_t kDomain = 1 << 14;
  const auto list = RandomSortedList(1000, kDomain, 97);
  const auto codecs = AllCodecsWithExtensions();
  for (const Codec* codec : codecs) {
    SCOPED_TRACE(std::string(codec->Name()));
    auto set = codec->Encode(list, kDomain);
    std::vector<uint8_t> image;
    codec->Serialize(*set, &image);

    // The untruncated image must be accepted and decode exactly.
    auto whole = codec->DeserializeChecked(image, kDomain);
    ASSERT_TRUE(whole.ok()) << whole.status().ToString();
    std::vector<uint32_t> decoded;
    codec->Decode(**whole, &decoded);
    ASSERT_EQ(decoded, list);

    for (size_t n = 0; n < image.size(); ++n) {
      auto r = codec->DeserializeChecked(
          std::span<const uint8_t>(image.data(), n), kDomain);
      if (!r.ok()) continue;
      codec->Decode(**r, &decoded);
      ASSERT_EQ(decoded.size(), (*r)->Cardinality()) << "prefix " << n;
      for (size_t i = 0; i < decoded.size(); ++i) {
        ASSERT_LT(decoded[i], kDomain) << "prefix " << n;
        if (i > 0) ASSERT_LT(decoded[i - 1], decoded[i]) << "prefix " << n;
      }
    }
  }
}

TEST(HybridBoundaryTest, ThresholdSidesAndCustomThreshold) {
  const Codec* roaring = FindCodec("Roaring");
  const Codec* list = FindCodec("SIMDPforDelta*");
  HybridCodec strict(roaring, list, /*density_threshold=*/0.5);
  HybridCodec loose(roaring, list, /*density_threshold=*/0.001);
  auto values = RandomSortedList(10000, 1 << 20, 91);  // density ~0.01
  auto s1 = strict.Encode(values, 1 << 20);
  auto s2 = loose.Encode(values, 1 << 20);
  EXPECT_FALSE(static_cast<const HybridCodec::Set&>(*s1).is_bitmap);
  EXPECT_TRUE(static_cast<const HybridCodec::Set&>(*s2).is_bitmap);
  // Both decode identically regardless of the inner representation.
  std::vector<uint32_t> d1, d2;
  strict.Decode(*s1, &d1);
  loose.Decode(*s2, &d2);
  EXPECT_EQ(d1, values);
  EXPECT_EQ(d2, values);
}

TEST(GroupVbTailTest, BlockBoundaryTails) {
  // Lists whose sizes hit every (block, group-of-4) remainder combination.
  GroupVbCodec codec;
  for (size_t n : {127u, 128u, 129u, 255u, 256u, 257u, 130u, 131u}) {
    auto values = RandomSortedList(n, 1 << 26, 200 + n);
    auto set = codec.Encode(values, 1 << 26);
    std::vector<uint32_t> decoded;
    codec.Decode(*set, &decoded);
    EXPECT_EQ(decoded, values) << n;
  }
}

TEST(EncodeDomainTest, LooseAndTightDomains) {
  // The domain hint must not change correctness, only (possibly) layout.
  auto values = RandomSortedList(3000, 1 << 16, 93);
  for (const Codec* codec : AllCodecs()) {
    auto tight = codec->Encode(values, 1 << 16);
    auto loose = codec->Encode(values, uint64_t{1} << 32);
    std::vector<uint32_t> d1, d2;
    codec->Decode(*tight, &d1);
    codec->Decode(*loose, &d2);
    EXPECT_EQ(d1, values) << codec->Name();
    EXPECT_EQ(d2, values) << codec->Name();
  }
}

}  // namespace
}  // namespace intcomp
