// Tests for the shared RLE run-stream engine, using a synthetic segment
// decoder so the algorithms are exercised independently of any codec.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "bitmap/runstream.h"
#include "test_util.h"

namespace intcomp {
namespace {

// A decoder over a pre-built vector of segments.
template <int W>
class FakeDecoder {
 public:
  static constexpr int kGroupBits = W;

  explicit FakeDecoder(const std::vector<RunSegment>* segs) : segs_(segs) {}

  bool Next(RunSegment* seg) {
    if (i_ >= segs_->size()) return false;
    *seg = (*segs_)[i_++];
    return true;
  }

 private:
  const std::vector<RunSegment>* segs_;
  size_t i_ = 0;
};

RunSegment Fill(bool bit, uint64_t count) {
  RunSegment s;
  s.is_fill = true;
  s.fill_bit = bit;
  s.count = count;
  return s;
}

RunSegment Lit(uint32_t payload) {
  RunSegment s;
  s.is_fill = false;
  s.literal = payload;
  return s;
}

TEST(EmitRangeTest, AppendsConsecutive) {
  std::vector<uint32_t> out = {7};
  EmitRange(10, 4, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{7, 10, 11, 12, 13}));
  EmitRange(20, 0, &out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(SegmentDecodeTest, MixedSegments) {
  std::vector<RunSegment> segs = {Lit(0b101), Fill(false, 2), Fill(true, 1),
                                  Lit(0b1)};
  std::vector<uint32_t> out;
  SegmentDecode(FakeDecoder<8>(&segs), &out);
  // Groups: 0 (bits 0,2), zeros for groups 1-2, ones for group 3 (24..31),
  // literal bit 0 of group 4 (32).
  std::vector<uint32_t> expected = {0, 2, 24, 25, 26, 27, 28, 29, 30, 31, 32};
  EXPECT_EQ(out, expected);
}

TEST(SegmentIntersectTest, FillLiteralCombinations) {
  std::vector<RunSegment> a = {Fill(true, 2), Lit(0b1100), Fill(false, 1),
                               Lit(0xff)};
  std::vector<RunSegment> b = {Lit(0b1010), Fill(true, 2), Lit(0b0100),
                               Fill(true, 2)};
  std::vector<uint32_t> out;
  SegmentIntersect(FakeDecoder<8>(&a), FakeDecoder<8>(&b), &out);
  // Group 0: 1-fill & 1010 -> bits 1,3. Group 1: 1-fill & 1-fill -> all 8.
  // Group 2: lit 1100 & b's second 1-fill group -> bits 2,3 (pos 18,19).
  // Group 3: 0-fill & lit -> none. Group 4: ff & 1-fill -> all 8 (32..39).
  std::vector<uint32_t> expected = {1, 3, 8, 9, 10, 11, 12, 13, 14, 15, 18, 19};
  for (uint32_t i = 32; i < 40; ++i) expected.push_back(i);
  EXPECT_EQ(out, expected);
}

TEST(SegmentIntersectTest, UnequalStreamLengths) {
  std::vector<RunSegment> a = {Fill(true, 100)};
  std::vector<RunSegment> b = {Lit(0b1), Fill(true, 1)};
  std::vector<uint32_t> out;
  SegmentIntersect(FakeDecoder<8>(&a), FakeDecoder<8>(&b), &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 8, 9, 10, 11, 12, 13, 14, 15}));
}

TEST(SegmentUnionTest, DrainsLongerStream) {
  std::vector<RunSegment> a = {Lit(0b10)};
  std::vector<RunSegment> b = {Fill(false, 2), Lit(0b1), Fill(true, 1)};
  std::vector<uint32_t> out;
  SegmentUnion(FakeDecoder<8>(&a), FakeDecoder<8>(&b), &out);
  std::vector<uint32_t> expected = {1, 16, 24, 25, 26, 27, 28, 29, 30, 31};
  EXPECT_EQ(out, expected);
}

TEST(SegmentIntersectWithListTest, SkipsFillRuns) {
  std::vector<RunSegment> segs = {Fill(false, 10), Lit(0b101), Fill(true, 2)};
  // Positions: groups 0-9 empty, group 10 has bits 80,82, groups 11-12
  // (positions 88..103) full; the stream ends at position 104.
  std::vector<uint32_t> probe = {5, 80, 81, 82, 88, 95, 103, 104, 200};
  std::vector<uint32_t> out;
  SegmentIntersectWithList(FakeDecoder<8>(&segs), probe, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{80, 82, 88, 95, 103}));
}

TEST(ChunkedBitStreamTest, CrossWidthIntersect) {
  // Same logical bitmap expressed at widths 7 and 8 must intersect to
  // itself. Bits: {3, 50, 51, 52, 100..139}.
  std::vector<uint32_t> values = {3, 50, 51, 52};
  for (uint32_t i = 100; i < 140; ++i) values.push_back(i);

  auto make_segments = [](const std::vector<uint32_t>& vals, int w) {
    std::vector<RunSegment> segs;
    uint64_t group = 0;
    size_t i = 0;
    while (i < vals.size()) {
      uint64_t g = vals[i] / w;
      if (g > group) segs.push_back(Fill(false, g - group));
      uint32_t payload = 0;
      while (i < vals.size() && vals[i] / static_cast<uint32_t>(w) == g) {
        payload |= 1u << (vals[i] % w);
        ++i;
      }
      segs.push_back(Lit(payload));
      group = g + 1;
    }
    return segs;
  };

  auto segs7 = make_segments(values, 7);
  auto segs8 = make_segments(values, 8);
  std::vector<uint32_t> out;
  BitStreamIntersect(
      ChunkedBitStream<FakeDecoder<7>>(FakeDecoder<7>(&segs7), 7),
      ChunkedBitStream<FakeDecoder<8>>(FakeDecoder<8>(&segs8), 8), &out);
  EXPECT_EQ(out, values);

  out.clear();
  BitStreamUnion(
      ChunkedBitStream<FakeDecoder<7>>(FakeDecoder<7>(&segs7), 7),
      ChunkedBitStream<FakeDecoder<8>>(FakeDecoder<8>(&segs8), 8), &out);
  EXPECT_EQ(out, values);
}

TEST(ChunkedBitStreamTest, SkipAndNext32) {
  std::vector<RunSegment> segs = {Fill(false, 4), Lit(0xab), Fill(true, 2)};
  ChunkedBitStream<FakeDecoder<8>> s(FakeDecoder<8>(&segs), 8);
  bool bit = true;
  EXPECT_EQ(s.FillBitsLeft(&bit), 32u);
  EXPECT_FALSE(bit);
  s.Skip(32);
  // Now at the literal: next 32 bits are 0xab then 16 ones then 8 more ones
  // (only 24 fill bits remain after the literal within this window? No: the
  // 1-fill contributes 16 bits; the stream ends after 24+16... ).
  uint32_t w = s.Next32();
  EXPECT_EQ(w & 0xffu, 0xabu);
  EXPECT_EQ((w >> 8) & 0xffffu, 0xffffu);  // the 16 one-fill bits
  EXPECT_EQ(w >> 24, 0u);                  // zero-padded past the end
  EXPECT_TRUE(s.exhausted());
}

}  // namespace
}  // namespace intcomp
