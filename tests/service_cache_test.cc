// Concurrency tests for the service result cache (src/service), written to
// run under TSan: N threads hammer one ResultCache with mixed Get/Put
// traffic, every hit must decode to exactly the value function of its key,
// and a generation bump must make every pre-bump entry unservable — no
// interleaving may hand a stale result to a post-bump reader.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/thread_pool.h"
#include "service/result_cache.h"
#include "service/sharded_index.h"
#include "test_util.h"

namespace intcomp {
namespace {

constexpr size_t kThreads = 8;

// Deterministic value function: the cached set for key index k. Generated
// fresh on every call so a test never confuses "cache returned stale bytes"
// with "reference mutated".
std::vector<uint32_t> ValueFor(size_t k, uint64_t domain) {
  return RandomSortedList(50 + 13 * (k % 17), domain, /*seed=*/1000 + k);
}

std::string KeyFor(size_t k) {
  return PlanCacheKey("Roaring", QueryPlan::Leaf(k));
}

// --- single-threaded admission / eviction semantics -----------------------

TEST(ResultCacheTest, DoorkeeperAdmitsOnSecondTouch) {
  const Codec& codec = *FindCodec("Roaring");
  const uint64_t domain = 1 << 14;
  ResultCacheOptions options;
  options.shards = 1;
  ResultCache cache(options, /*num_index_shards=*/2);

  const std::vector<uint32_t> value = ValueFor(1, domain);
  EXPECT_FALSE(cache.Put(KeyFor(1), codec, value, domain));  // first touch
  EXPECT_EQ(cache.Entries(), 0u);
  EXPECT_TRUE(cache.Put(KeyFor(1), codec, value, domain));  // second touch
  EXPECT_EQ(cache.Entries(), 1u);
  std::vector<uint32_t> got;
  EXPECT_TRUE(cache.Get(KeyFor(1), &got));
  EXPECT_EQ(got, value);
  const ResultCacheStats s = cache.Snapshot();
  EXPECT_EQ(s.rejected_doorkeeper, 1u);
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(ResultCacheTest, OversizedResultsAreNeverCached) {
  const Codec& codec = *FindCodec("Bitset");
  const uint64_t domain = 1 << 20;
  ResultCacheOptions options;
  options.require_second_touch = false;
  options.max_entry_bytes = 64;  // a 1M-bit bitset image cannot fit
  ResultCache cache(options, 1);
  EXPECT_FALSE(cache.Put(KeyFor(2), codec, ValueFor(2, domain), domain));
  EXPECT_EQ(cache.Entries(), 0u);
  EXPECT_EQ(cache.Snapshot().rejected_size, 1u);
}

TEST(ResultCacheTest, LruEvictsToCapacityKeepingTheNewestEntry) {
  const Codec& codec = *FindCodec("Roaring");
  const uint64_t domain = 1 << 14;
  ResultCacheOptions options;
  options.shards = 1;
  options.capacity_bytes = 2048;
  options.require_second_touch = false;
  ResultCache cache(options, 1);
  for (size_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(cache.Put(KeyFor(k), codec, ValueFor(k, domain), domain));
    ASSERT_LE(cache.SizeInBytes(), options.capacity_bytes);
    ASSERT_GE(cache.Entries(), 1u);  // newest entry always survives
  }
  EXPECT_GT(cache.Snapshot().evicted, 0u);
  EXPECT_LT(cache.Entries(), 64u);
  // Whatever remains still decodes to its own value.
  size_t live = 0;
  for (size_t k = 0; k < 64; ++k) {
    std::vector<uint32_t> got;
    if (cache.Get(KeyFor(k), &got)) {
      EXPECT_EQ(got, ValueFor(k, domain)) << "key " << k;
      ++live;
    }
  }
  EXPECT_EQ(live, cache.Entries());
}

// --- phased staleness: nothing from generation 1 survives the bump --------

TEST(ResultCacheTest, GenerationBumpNeverServesPreBumpResults) {
  const Codec& codec = *FindCodec("Roaring");
  const uint64_t domain = 1 << 14;
  ResultCacheOptions options;
  options.require_second_touch = false;
  ResultCache cache(options, /*num_index_shards=*/4);

  // Phase 1: fill with F1 values from all threads.
  const auto f1 = [&](size_t k) { return ValueFor(k, domain); };
  const auto f2 = [&](size_t k) { return ValueFor(k + 500, domain); };
  constexpr size_t kKeys = 64;
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (size_t k = t; k < kKeys; k += kThreads) {
          cache.Put(KeyFor(k), codec, f1(k), domain);
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  // The data "changes": bump one shard's generation. From here on, a hit
  // for key k must decode to F2 — an F1 hit is the staleness bug.
  cache.BumpGeneration(2);

  std::atomic<size_t> f2_hits{0};
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::vector<uint32_t> got;
        for (size_t round = 0; round < 4; ++round) {
          for (size_t k = t; k < kKeys; k += kThreads) {
            if (cache.Get(KeyFor(k), &got)) {
              ASSERT_EQ(got, f2(k)) << "stale pre-bump value served, key "
                                    << k;
              f2_hits.fetch_add(1, std::memory_order_relaxed);
            } else {
              cache.Put(KeyFor(k), codec, f2(k), domain);
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_GT(f2_hits.load(), 0u);  // the refreshed entries do serve
  EXPECT_GT(cache.Snapshot().stale_dropped, 0u);
}

// --- chaotic phase: concurrent Get/Put/Bump, hits always self-consistent --

TEST(ResultCacheTest, ConcurrentHammerHitsAreBitIdenticalToFreshValues) {
  const Codec& codec = *FindCodec("Roaring");
  const uint64_t domain = 1 << 14;
  ResultCacheOptions options;
  options.shards = 4;
  options.capacity_bytes = 64 << 10;  // small: forces eviction races too
  options.require_second_touch = false;
  ResultCache cache(options, /*num_index_shards=*/4);

  constexpr size_t kKeys = 96;
  constexpr size_t kOpsPerThread = 2000;
  std::atomic<size_t> hits{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Prng rng(NoteSeed(TestSeed(90) + t));
      std::vector<uint32_t> got;
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        const size_t k = rng.NextBounded(kKeys);
        const uint64_t dice = rng.NextBounded(100);
        if (dice < 2) {
          // Values are generation-independent here, so bumps only exercise
          // the drop path — a hit remains correct before and after.
          cache.BumpGeneration(rng.NextBounded(4));
        } else if (dice < 50) {
          if (cache.Get(KeyFor(k), &got)) {
            ASSERT_EQ(got, ValueFor(k, domain)) << "key " << k;
            hits.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          cache.Put(KeyFor(k), codec, ValueFor(k, domain), domain);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(hits.load(), 0u);
  const ResultCacheStats s = cache.Snapshot();
  EXPECT_EQ(s.invalidations, cache.Generation(0) + cache.Generation(1) +
                                 cache.Generation(2) + cache.Generation(3));
}

// --- service level: concurrent Query + Invalidate stays deterministic -----

TEST(IndexServiceTest, ConcurrentQueriesWithInvalidationStayDeterministic) {
  const Codec& codec = *FindCodec("Roaring");
  const uint64_t domain = 1 << 14;
  std::vector<std::vector<uint32_t>> lists;
  for (size_t l = 0; l < 6; ++l) {
    lists.push_back(RandomSortedList(400 + 100 * l, domain, 300 + l));
  }
  const ShardedIndex index = ShardedIndex::Build(codec, lists, domain, 8);
  ThreadPool pool(2);
  IndexServiceOptions options;
  options.cache.require_second_touch = false;
  IndexService service(&index, &pool, options);

  std::vector<QueryPlan> plans;
  plans.push_back(QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}));
  plans.push_back(QueryPlan::Or({QueryPlan::Leaf(2), QueryPlan::Leaf(3)}));
  plans.push_back(QueryPlan::And(
      {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(4)}),
       QueryPlan::Leaf(5)}));
  std::vector<std::vector<uint32_t>> ref;
  for (const QueryPlan& p : plans) {
    std::vector<uint32_t> rows;
    ASSERT_TRUE(service.Query(p, &rows).ok());
    ref.push_back(std::move(rows));
  }

  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<uint32_t> rows;
      for (size_t i = 0; i < 200; ++i) {
        if (t == 0 && i % 16 == 0) service.Invalidate(i % 8);
        const size_t q = (t + i) % plans.size();
        ASSERT_TRUE(service.Query(plans[q], &rows).ok());
        ASSERT_EQ(rows, ref[q]) << "plan " << q << " iter " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries, 3 + 4 * 200u);
  EXPECT_GT(stats.cache.invalidations, 0u);
}

}  // namespace
}  // namespace intcomp
