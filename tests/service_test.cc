// Tests for the sharded snapshot index service (src/service): row-range
// partitioning, canonical cache keys, and the service's core guarantee —
// results bit-identical to the unsharded serial path for every codec at 1,
// 2, and 8 shards, including results served from the compressed cache.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/thread_pool.h"
#include "index/bitmap_index.h"
#include "index/inverted_index.h"
#include "obs/metrics.h"
#include "service/result_cache.h"
#include "service/shard_router.h"
#include "service/sharded_index.h"
#include "test_util.h"

namespace intcomp {
namespace {

// ------------------------------------------------------------- ShardRouter

TEST(ShardRouterTest, RangesPartitionTheRowSpace) {
  for (uint64_t rows : {1ull, 7ull, 64ull, 1000ull, 1001ull}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
      const ShardRouter router(rows, shards);
      ASSERT_GE(router.NumShards(), 1u);
      ASSERT_LE(router.NumShards(), std::max<uint64_t>(rows, 1));
      uint64_t next = 0;
      for (size_t s = 0; s < router.NumShards(); ++s) {
        EXPECT_EQ(router.Begin(s), next);
        EXPECT_GT(router.End(s), router.Begin(s)) << "empty shard " << s;
        next = router.End(s);
      }
      EXPECT_EQ(next, rows);
      // Balanced to within one row.
      for (size_t s = 1; s < router.NumShards(); ++s) {
        const int64_t d = static_cast<int64_t>(router.ShardRows(s)) -
                          static_cast<int64_t>(router.ShardRows(0));
        EXPECT_LE(std::abs(d), 1);
      }
      for (uint64_t row = 0; row < rows; ++row) {
        const size_t s = router.ShardOf(row);
        EXPECT_GE(row, router.Begin(s));
        EXPECT_LT(row, router.End(s));
      }
    }
  }
}

TEST(ShardRouterTest, RebaseShiftsByShardBase) {
  const ShardRouter router(100, 4);
  std::vector<uint32_t> out = {7};
  const std::vector<uint32_t> local = {0, 3, 24};
  router.Rebase(2, local, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{7, 50, 53, 74}));
}

// ---------------------------------------------------- canonical plan keys

TEST(PlanCacheKeyTest, CommutedAndFlattenedPlansShareAKey) {
  const auto key = [](const QueryPlan& p) { return PlanCacheKey("C", p); };
  // Commutativity.
  EXPECT_EQ(key(QueryPlan::And({QueryPlan::Leaf(1), QueryPlan::Leaf(2)})),
            key(QueryPlan::And({QueryPlan::Leaf(2), QueryPlan::Leaf(1)})));
  // Associativity (flattening).
  EXPECT_EQ(
      key(QueryPlan::And({QueryPlan::And({QueryPlan::Leaf(1), QueryPlan::Leaf(2)}),
                          QueryPlan::Leaf(3)})),
      key(QueryPlan::And({QueryPlan::Leaf(3),
                          QueryPlan::And({QueryPlan::Leaf(2), QueryPlan::Leaf(1)})})));
  // Idempotence (duplicate operands collapse).
  EXPECT_EQ(key(QueryPlan::Or({QueryPlan::Leaf(4), QueryPlan::Leaf(4)})),
            key(QueryPlan::Leaf(4)));
  // Single-child operator nodes collapse to the child.
  EXPECT_EQ(key(QueryPlan::And({QueryPlan::Leaf(9)})), key(QueryPlan::Leaf(9)));

  // Distinct queries keep distinct keys.
  EXPECT_NE(key(QueryPlan::And({QueryPlan::Leaf(1), QueryPlan::Leaf(2)})),
            key(QueryPlan::Or({QueryPlan::Leaf(1), QueryPlan::Leaf(2)})));
  EXPECT_NE(key(QueryPlan::Leaf(1)), key(QueryPlan::Leaf(11)));
  // Nested mixed ops never flatten across the operator boundary.
  EXPECT_NE(
      key(QueryPlan::And({QueryPlan::Or({QueryPlan::Leaf(1), QueryPlan::Leaf(2)}),
                          QueryPlan::Leaf(3)})),
      key(QueryPlan::And(
          {QueryPlan::Leaf(1), QueryPlan::Leaf(2), QueryPlan::Leaf(3)})));
  // The codec name is part of the key.
  EXPECT_NE(PlanCacheKey("WAH", QueryPlan::Leaf(0)),
            PlanCacheKey("EWAH", QueryPlan::Leaf(0)));
}

TEST(PlanCacheKeyTest, CanonicalPlanEvaluatesToTheSameSet) {
  const Codec& codec = *FindCodec("Roaring");
  const uint64_t domain = 1 << 14;
  std::vector<std::vector<uint32_t>> lists;
  std::vector<std::unique_ptr<CompressedSet>> sets;
  std::vector<const CompressedSet*> ptrs;
  for (size_t i = 0; i < 4; ++i) {
    lists.push_back(RandomSortedList(500 + 200 * i, domain, 40 + i));
    sets.push_back(codec.Encode(lists.back(), domain));
    ptrs.push_back(sets.back().get());
  }
  const QueryPlan messy = QueryPlan::And(
      {QueryPlan::And({QueryPlan::Leaf(2), QueryPlan::Leaf(1)}),
       QueryPlan::Or({QueryPlan::Leaf(3), QueryPlan::Leaf(3), QueryPlan::Leaf(0)}),
       QueryPlan::Leaf(1)});
  const QueryPlan canon = CanonicalizePlan(messy);
  EXPECT_EQ(EvaluatePlan(codec, messy, ptrs), EvaluatePlan(codec, canon, ptrs));
}

// ----------------------------------------------- service vs. serial path

struct ColumnFixture {
  std::vector<uint32_t> codes;
  uint32_t cardinality = 8;
  std::vector<QueryPlan> plans;
};

ColumnFixture MakeColumn(size_t rows) {
  ColumnFixture f;
  Prng rng(TestSeed(2024));
  f.codes.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    // Skewed value popularity: min of two uniform draws biases toward 0.
    f.codes.push_back(static_cast<uint32_t>(
        std::min(rng.NextBounded(f.cardinality), rng.NextBounded(f.cardinality))));
  }
  // Predicate battery: Eq, IN-list, range, conjunctions of disjunctions,
  // duplicates (idempotence through the cache key), and an all-values union.
  f.plans.push_back(QueryPlan::Leaf(0));
  f.plans.push_back(QueryPlan::Leaf(7));
  f.plans.push_back(QueryPlan::Or(
      {QueryPlan::Leaf(1), QueryPlan::Leaf(3), QueryPlan::Leaf(5)}));
  f.plans.push_back(QueryPlan::Or(
      {QueryPlan::Leaf(0), QueryPlan::Leaf(1), QueryPlan::Leaf(2),
       QueryPlan::Leaf(3), QueryPlan::Leaf(4)}));
  f.plans.push_back(QueryPlan::And(
      {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}),
       QueryPlan::Or({QueryPlan::Leaf(2), QueryPlan::Leaf(3)})}));
  f.plans.push_back(QueryPlan::And(
      {QueryPlan::Leaf(2), QueryPlan::Leaf(5)}));  // disjoint: empty result
  f.plans.push_back(QueryPlan::And(
      {QueryPlan::Or({QueryPlan::Leaf(6), QueryPlan::Leaf(2)}),
       QueryPlan::Or({QueryPlan::Leaf(2), QueryPlan::Leaf(6)}),
       QueryPlan::Leaf(2)}));
  std::vector<QueryPlan> all;
  for (uint32_t c = 0; c < f.cardinality; ++c) all.push_back(QueryPlan::Leaf(c));
  f.plans.push_back(QueryPlan::Or(std::move(all)));
  return f;
}

class ServiceDeterminismTest : public ::testing::TestWithParam<const Codec*> {
};

TEST_P(ServiceDeterminismTest, ShardedMatchesSerialIncludingCacheHits) {
  const Codec& codec = *GetParam();
  const ColumnFixture f = MakeColumn(6000);

  // Unsharded serial reference: one BitmapIndex over the full column.
  const BitmapIndex full = BitmapIndex::Build(codec, f.codes, f.cardinality);
  std::vector<const CompressedSet*> full_sets;
  for (uint32_t c = 0; c < f.cardinality; ++c) {
    full_sets.push_back(full.SetFor(c));
  }
  std::vector<std::vector<uint32_t>> ref;
  for (const QueryPlan& plan : f.plans) {
    ref.push_back(EvaluatePlan(codec, plan, full_sets));
  }

  ThreadPool pool(3);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE(shards);
    const ShardedIndex index =
        ShardedIndex::BuildFromColumn(codec, f.codes, f.cardinality, shards);
    ASSERT_EQ(index.NumShards(), shards);
    ASSERT_EQ(index.NumRows(), f.codes.size());
    EXPECT_GT(index.SizeInBytes(), 0u);

    IndexServiceOptions options;
    options.cache.require_second_touch = false;  // admit on first touch
    IndexService service(&index, &pool, options);
    // Round 0 evaluates and fills the cache; round 1 must be served from it
    // and still be bit-identical.
    for (int round = 0; round < 2; ++round) {
      for (size_t q = 0; q < f.plans.size(); ++q) {
        std::vector<uint32_t> rows;
        ASSERT_TRUE(service.Query(f.plans[q], &rows).ok());
        ASSERT_EQ(rows, ref[q]) << "plan " << q << " round " << round;
      }
    }
    const ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.cache.misses, f.plans.size());
    EXPECT_EQ(stats.cache.hits, f.plans.size());
    EXPECT_EQ(stats.queries, 2 * f.plans.size());

    // Invalidation: every cached result is refused, recomputed identically.
    service.Invalidate(shards - 1);
    for (size_t q = 0; q < f.plans.size(); ++q) {
      std::vector<uint32_t> rows;
      ASSERT_TRUE(service.Query(f.plans[q], &rows).ok());
      ASSERT_EQ(rows, ref[q]) << "plan " << q << " after invalidation";
    }
    EXPECT_EQ(service.Stats().cache.hits, f.plans.size());  // no new hits
    EXPECT_GE(service.Stats().cache.stale_dropped, 1u);
  }
}

std::string CodecName(const ::testing::TestParamInfo<const Codec*>& info) {
  std::string name(info.param->Name());
  for (char& c : name) {
    if (c == '*') c = 'S';
  }
  return name;
}

std::vector<const Codec*> AllPlusExtensions() {
  // Shared roster (core/registry.h): paper methods + extensions, so this
  // suite can never drift from the other differential suites.
  return {AllCodecsWithExtensions().begin(), AllCodecsWithExtensions().end()};
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, ServiceDeterminismTest,
                         ::testing::ValuesIn(AllPlusExtensions()), CodecName);

// ------------------------------------------------------ posting-built shards

TEST(ShardedIndexTest, PostingsBuildMatchesInvertedIndexQueries) {
  const Codec& codec = *FindCodec("SIMDPforDelta*");
  InvertedIndex inverted(codec);
  const std::vector<std::string_view> vocab = {"red",  "green", "blue",
                                               "cyan", "teal"};
  Prng rng(TestSeed(77));
  for (uint32_t doc = 0; doc < 4000; ++doc) {
    std::vector<std::string_view> terms;
    for (std::string_view t : vocab) {
      if (rng.NextBounded(3) == 0) terms.push_back(t);
    }
    if (terms.empty()) terms.push_back(vocab[doc % vocab.size()]);
    inverted.AddDocument(doc, terms);
  }
  inverted.Finalize();
  ASSERT_NE(inverted.PostingFor("red"), nullptr);
  EXPECT_EQ(inverted.PostingFor("absent"), nullptr);
  EXPECT_EQ(inverted.Terms().size(), vocab.size());

  const ShardedIndex index =
      ShardedIndex::BuildFromPostings(codec, inverted, vocab, 4);
  ThreadPool pool(2);
  IndexService service(&index, &pool, IndexServiceOptions{});

  // Conjunctive and disjunctive keyword queries through both paths.
  std::vector<uint32_t> want, got;
  const std::vector<std::string_view> pair = {"red", "blue"};
  ASSERT_TRUE(inverted.Conjunctive(pair, &want));
  ASSERT_TRUE(service
                  .Query(QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(2)}),
                         &got)
                  .ok());
  EXPECT_EQ(got, want);
  inverted.Disjunctive(pair, &want);
  ASSERT_TRUE(service
                  .Query(QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(2)}),
                         &got)
                  .ok());
  EXPECT_EQ(got, want);
}

// ------------------------------------------------------------ BuildRange

TEST(BitmapIndexTest, BuildRangeHoldsLocalIdsOfTheSubRange) {
  const Codec& codec = *FindCodec("WAH");
  std::vector<uint32_t> codes;
  Prng rng(TestSeed(11));
  for (size_t i = 0; i < 1000; ++i) {
    codes.push_back(static_cast<uint32_t>(rng.NextBounded(4)));
  }
  const BitmapIndex shard = BitmapIndex::BuildRange(codec, codes, 4, 250, 600);
  EXPECT_EQ(shard.NumRows(), 350u);
  for (uint32_t c = 0; c < 4; ++c) {
    std::vector<uint32_t> rows;
    shard.Eq(c, &rows);
    std::vector<uint32_t> want;
    for (uint32_t r = 250; r < 600; ++r) {
      if (codes[r] == c) want.push_back(r - 250);
    }
    EXPECT_EQ(rows, want) << "code " << c;
  }
}

// --------------------------------------------------------- error handling

TEST(IndexServiceTest, MalformedPlansAreRejectedWithoutFanOut) {
  const Codec& codec = *FindCodec("Roaring");
  const ColumnFixture f = MakeColumn(500);
  const ShardedIndex index =
      ShardedIndex::BuildFromColumn(codec, f.codes, f.cardinality, 2);
  ThreadPool pool(2);
  IndexService service(&index, &pool, IndexServiceOptions{});

  std::vector<uint32_t> rows = {123};
  Status st = service.Query(QueryPlan::Leaf(f.cardinality), &rows);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(rows.empty());
  st = service.Query(QueryPlan::And({}), &rows);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  st = service.Query(
      QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1000)}), &rows);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Stats().rejected, 3u);
  // A malformed plan never pollutes the cache.
  EXPECT_EQ(service.Stats().cache.hits + service.Stats().cache.misses, 0u);
}

// ----------------------------------------------- stats + metrics plumbing

TEST(IndexServiceTest, CacheCountersReachEngineStatsAndMetricsRegistry) {
  const Codec& codec = *FindCodec("EWAH");
  const ColumnFixture f = MakeColumn(2000);
  const ShardedIndex index =
      ShardedIndex::BuildFromColumn(codec, f.codes, f.cardinality, 4);
  ThreadPool pool(2);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  reg.SetEnabled(true);
  EngineStats stats;
  {
    IndexServiceOptions options;
    options.cache.require_second_touch = false;
    IndexService cached(&index, &pool, options, &stats);
    std::vector<uint32_t> rows;
    ASSERT_TRUE(cached.Query(f.plans[0], &rows).ok());  // miss
    ASSERT_TRUE(cached.Query(f.plans[0], &rows).ok());  // hit
    cached.Invalidate(0);
  }
  {
    IndexServiceOptions options;
    options.cache_enabled = false;
    IndexService uncached(&index, &pool, options, &stats);
    ASSERT_EQ(uncached.Cache(), nullptr);
    std::vector<uint32_t> rows;
    ASSERT_TRUE(uncached.Query(f.plans[0], &rows).ok());  // bypass
  }
  EXPECT_EQ(stats.CacheHits(), 1u);
  EXPECT_EQ(stats.CacheMisses(), 1u);
  EXPECT_EQ(stats.CacheBypass(), 1u);
  const std::string line = stats.ToString();
  EXPECT_NE(line.find("cache 1 hit / 1 miss / 1 bypass"), std::string::npos);

  EXPECT_EQ(reg.CounterValue("service.cache.hit"), 1u);
  EXPECT_EQ(reg.CounterValue("service.cache.miss"), 1u);
  EXPECT_EQ(reg.CounterValue("service.cache.bypass"), 1u);
  EXPECT_EQ(reg.CounterValue("service.cache.invalidation"), 1u);
  EXPECT_EQ(reg.OpLatency(codec.Name(), obs::OpKind::kServiceQuery)->Count(),
            3u);
  // The service_query op kind reaches both exporters.
  EXPECT_NE(reg.ExportJsonl("t").find("service_query"), std::string::npos);
  EXPECT_NE(reg.ExportPrometheus().find("service_query"), std::string::npos);
  reg.SetEnabled(false);
  reg.Reset();
}

}  // namespace
}  // namespace intcomp
