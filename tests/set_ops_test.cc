// Tests for the SvS multi-list drivers and the query-plan evaluator, run
// against every codec in the registry.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/query.h"
#include "core/registry.h"
#include "core/set_ops.h"
#include "test_util.h"

namespace intcomp {
namespace {

class SetOpsTest : public ::testing::TestWithParam<const Codec*> {
 protected:
  const Codec& codec() const { return *GetParam(); }

  std::vector<std::unique_ptr<CompressedSet>> EncodeAll(
      const std::vector<std::vector<uint32_t>>& lists) const {
    std::vector<std::unique_ptr<CompressedSet>> sets;
    for (const auto& l : lists) sets.push_back(codec().Encode(l, 1 << 22));
    return sets;
  }

  static std::vector<const CompressedSet*> Ptrs(
      const std::vector<std::unique_ptr<CompressedSet>>& sets) {
    std::vector<const CompressedSet*> p;
    for (const auto& s : sets) p.push_back(s.get());
    return p;
  }
};

TEST_P(SetOpsTest, ThreeWayIntersection) {
  std::vector<std::vector<uint32_t>> lists = {
      RandomSortedList(500, 1 << 20, 1),
      RandomSortedList(20000, 1 << 20, 2),
      RandomSortedList(100000, 1 << 20, 3),
  };
  auto expected = RefIntersect(RefIntersect(lists[0], lists[1]), lists[2]);
  auto sets = EncodeAll(lists);
  std::vector<uint32_t> got;
  IntersectSets(codec(), Ptrs(sets), &got);
  EXPECT_EQ(got, expected);
}

TEST_P(SetOpsTest, FiveWayIntersectionWithSharedCore) {
  // Plant a common subset so the result is non-empty.
  auto core = RandomSortedList(50, 1 << 20, 9);
  std::vector<std::vector<uint32_t>> lists;
  for (uint64_t s = 0; s < 5; ++s) {
    auto l = RandomSortedList(3000 << s, 1 << 20, 10 + s);
    l.insert(l.end(), core.begin(), core.end());
    std::sort(l.begin(), l.end());
    l.erase(std::unique(l.begin(), l.end()), l.end());
    lists.push_back(std::move(l));
  }
  std::vector<uint32_t> expected = lists[0];
  for (size_t i = 1; i < lists.size(); ++i) {
    expected = RefIntersect(expected, lists[i]);
  }
  ASSERT_GE(expected.size(), core.size());
  auto sets = EncodeAll(lists);
  std::vector<uint32_t> got;
  IntersectSets(codec(), Ptrs(sets), &got);
  EXPECT_EQ(got, expected);
}

TEST_P(SetOpsTest, KWayUnion) {
  std::vector<std::vector<uint32_t>> lists = {
      RandomSortedList(100, 1 << 20, 21),
      RandomSortedList(5000, 1 << 20, 22),
      RandomSortedList(30000, 1 << 20, 23),
      RandomSortedList(7, 1 << 20, 24),
  };
  std::vector<uint32_t> expected;
  for (const auto& l : lists) expected = RefUnion(expected, l);
  auto sets = EncodeAll(lists);
  std::vector<uint32_t> got;
  UnionSets(codec(), Ptrs(sets), &got);
  EXPECT_EQ(got, expected);
}

TEST_P(SetOpsTest, SingleListOpsDecode) {
  auto list = RandomSortedList(1000, 1 << 20, 31);
  auto set = codec().Encode(list, 1 << 22);
  const CompressedSet* ptr = set.get();
  std::vector<uint32_t> got;
  IntersectSets(codec(), std::span(&ptr, 1), &got);
  EXPECT_EQ(got, list);
  UnionSets(codec(), std::span(&ptr, 1), &got);
  EXPECT_EQ(got, list);
}

TEST_P(SetOpsTest, EmptyIntersectionShortCircuits) {
  std::vector<std::vector<uint32_t>> lists = {
      {1, 3, 5},
      {2, 4, 6},
      RandomSortedList(1000, 1 << 20, 41),
  };
  auto sets = EncodeAll(lists);
  std::vector<uint32_t> got = {99};
  IntersectSets(codec(), Ptrs(sets), &got);
  EXPECT_TRUE(got.empty());
}

TEST_P(SetOpsTest, SingleListPlanEvaluates) {
  // k=1 regression: a one-child AND / OR (and a bare leaf) must all reduce
  // to a plain decode, for every codec.
  auto list = RandomSortedList(2000, 1 << 20, 33);
  auto set = codec().Encode(list, 1 << 22);
  const CompressedSet* ptr = set.get();
  EXPECT_EQ(EvaluatePlan(codec(), QueryPlan::Leaf(0), std::span(&ptr, 1)),
            list);
  EXPECT_EQ(EvaluatePlan(codec(), QueryPlan::And({QueryPlan::Leaf(0)}),
                         std::span(&ptr, 1)),
            list);
  EXPECT_EQ(EvaluatePlan(codec(), QueryPlan::Or({QueryPlan::Leaf(0)}),
                         std::span(&ptr, 1)),
            list);
}

TEST_P(SetOpsTest, EmptySetInputs) {
  // Empty-CompressedSet regression: an empty operand must behave as the
  // empty set through every driver, and an empty encoding must cost zero
  // bytes (the blocked list codecs used to charge their trailing slack
  // word) and survive a serialize round-trip.
  auto empty = codec().Encode(std::span<const uint32_t>(), 1 << 22);
  EXPECT_EQ(empty->Cardinality(), 0u);
  EXPECT_EQ(empty->SizeInBytes(), 0u);

  std::vector<uint8_t> image;
  codec().Serialize(*empty, &image);
  auto restored = codec().Deserialize(image.data(), image.size());
  ASSERT_NE(restored, nullptr);
  std::vector<uint32_t> got = {99};
  codec().Decode(*restored, &got);
  EXPECT_TRUE(got.empty());

  auto list = RandomSortedList(1000, 1 << 20, 34);
  auto set = codec().Encode(list, 1 << 22);
  const CompressedSet* both[] = {set.get(), empty.get()};
  IntersectSets(codec(), both, &got);
  EXPECT_TRUE(got.empty());
  UnionSets(codec(), both, &got);
  EXPECT_EQ(got, list);
  const CompressedSet* only_empty[] = {empty.get()};
  IntersectSets(codec(), only_empty, &got);
  EXPECT_TRUE(got.empty());

  auto plan = QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(1)});
  EXPECT_TRUE(EvaluatePlan(codec(), plan, both).empty());
  auto or_plan = QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)});
  EXPECT_EQ(EvaluatePlan(codec(), or_plan, both), list);
}

TEST_P(SetOpsTest, ArenaReuseMatchesThrowawayArena) {
  // The arena-taking overloads must be pure in (codec, plan, sets): running
  // many different queries through ONE arena gives the same answers as a
  // fresh arena per call, and the buffer count plateaus (reuse, not growth).
  std::vector<std::vector<uint32_t>> lists;
  for (uint64_t s = 0; s < 4; ++s) {
    lists.push_back(RandomSortedList(5000, 1 << 18, 70 + s));
  }
  auto sets = EncodeAll(lists);
  auto ptrs = Ptrs(sets);
  auto plan = QueryPlan::And(
      {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}),
       QueryPlan::Or({QueryPlan::Leaf(2), QueryPlan::Leaf(3)})});
  ScratchArena arena;
  std::vector<uint32_t> got;
  size_t high_water = 0;
  for (int round = 0; round < 5; ++round) {
    EvaluatePlan(codec(), plan, ptrs, &arena, &got);
    EXPECT_EQ(got, EvaluatePlan(codec(), plan, ptrs));
    IntersectSets(codec(), ptrs, &arena, &got);
    std::vector<uint32_t> fresh;
    IntersectSets(codec(), ptrs, &fresh);
    EXPECT_EQ(got, fresh);
    UnionSets(codec(), ptrs, &arena, &got);
    UnionSets(codec(), ptrs, &fresh);
    EXPECT_EQ(got, fresh);
    if (round == 0) {
      high_water = arena.BuffersAllocated();
    } else {
      EXPECT_EQ(arena.BuffersAllocated(), high_water)
          << "arena grew after warm-up round";
    }
  }
  EXPECT_EQ(arena.BuffersFree(), arena.BuffersAllocated())
      << "a lease leaked out of query evaluation";
}

TEST_P(SetOpsTest, Ssb34StylePlan) {
  // (L0 u L1) n (L2 u L3) n L4 — the paper's Q3.4 shape.
  std::vector<std::vector<uint32_t>> lists;
  for (uint64_t s = 0; s < 4; ++s) {
    lists.push_back(RandomSortedList(4000, 1 << 18, 50 + s));
  }
  lists.push_back(RandomSortedList(3000, 1 << 18, 54));
  auto expected = RefIntersect(
      RefIntersect(RefUnion(lists[0], lists[1]), RefUnion(lists[2], lists[3])),
      lists[4]);
  auto plan = QueryPlan::And(
      {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}),
       QueryPlan::Or({QueryPlan::Leaf(2), QueryPlan::Leaf(3)}),
       QueryPlan::Leaf(4)});
  auto sets = EncodeAll(lists);
  auto got = EvaluatePlan(codec(), plan, Ptrs(sets));
  EXPECT_EQ(got, expected);
}

TEST_P(SetOpsTest, Ssb41StylePlan) {
  // L0 n L1 n (L2 u L3) — the paper's Q4.1 shape.
  std::vector<std::vector<uint32_t>> lists;
  for (uint64_t s = 0; s < 4; ++s) {
    lists.push_back(RandomSortedList(30000, 1 << 18, 60 + s));
  }
  auto expected = RefIntersect(RefIntersect(lists[0], lists[1]),
                               RefUnion(lists[2], lists[3]));
  auto plan = QueryPlan::And(
      {QueryPlan::Leaf(0), QueryPlan::Leaf(1),
       QueryPlan::Or({QueryPlan::Leaf(2), QueryPlan::Leaf(3)})});
  auto sets = EncodeAll(lists);
  auto got = EvaluatePlan(codec(), plan, Ptrs(sets));
  EXPECT_EQ(got, expected);
}

std::string CodecName(const ::testing::TestParamInfo<const Codec*>& info) {
  std::string name(info.param->Name());
  for (char& c : name) {
    if (c == '*') c = 'S';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, SetOpsTest,
                         ::testing::ValuesIn(AllCodecs().begin(),
                                             AllCodecs().end()),
                         CodecName);

}  // namespace
}  // namespace intcomp
