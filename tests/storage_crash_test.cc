// Crash-consistency test for the container writer (src/storage).
//
// A RecordingSink captures the writer's exact op stream — every Append and
// the final header patch, in order. A crash at any moment leaves on disk
// some byte-prefix of that stream's effects (we model the strict in-order
// case: all bytes up to the crash point applied, nothing after — with
// unwritten tail bytes absent, i.e. a short file). The test replays EVERY
// prefix and requires that MappedIndex either refuses to open (clean
// Status) or — only once the final header-patch byte has landed — serves
// an index bit-identical to the fully-written one.
//
// The format makes this easy to guarantee: sections stream first, the
// header is patched last, and the header embeds file_bytes + CRCs. Any
// prefix short of the full stream has a zero magic, a bad header CRC, or a
// file-size mismatch.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/query.h"
#include "core/registry.h"
#include "engine/thread_pool.h"
#include "service/sharded_index.h"
#include "storage/index_writer.h"
#include "storage/mapped_index.h"
#include "test_util.h"

namespace intcomp {
namespace {

using storage::MappedIndex;
using storage::MappedIndexOptions;
using storage::ValidateMode;

constexpr uint64_t kRows = 1200;
constexpr size_t kNumLists = 4;

// Records the writer's byte-level op stream while also maintaining the
// final file contents.
class RecordingSink final : public storage::StorageSink {
 public:
  struct Op {
    uint64_t offset;
    std::vector<uint8_t> bytes;
  };

  Status Append(std::span<const uint8_t> bytes) override {
    ops_.push_back({end_, {bytes.begin(), bytes.end()}});
    end_ += bytes.size();
    return Status::Ok();
  }
  Status WriteAt(uint64_t offset, std::span<const uint8_t> bytes) override {
    if (offset + bytes.size() > end_) {
      return Status::Internal("WriteAt past end of stream");
    }
    ops_.push_back({offset, {bytes.begin(), bytes.end()}});
    return Status::Ok();
  }
  Status Flush() override { return Status::Ok(); }

  // The file as it exists after the first `applied_bytes` bytes of the op
  // stream hit the disk, in order. A partially-applied op lands partially;
  // regions past the high-water mark of applied appends simply do not
  // exist yet (short file).
  std::vector<uint8_t> FileAfter(size_t applied_bytes) const {
    std::vector<uint8_t> file;
    size_t budget = applied_bytes;
    for (const Op& op : ops_) {
      if (budget == 0) break;
      const size_t n = std::min(budget, op.bytes.size());
      const size_t end = static_cast<size_t>(op.offset) + n;
      if (end > file.size()) file.resize(end, 0);
      std::copy(op.bytes.begin(), op.bytes.begin() + n,
                file.begin() + static_cast<size_t>(op.offset));
      budget -= n;
    }
    return file;
  }

  size_t TotalStreamBytes() const {
    size_t total = 0;
    for (const Op& op : ops_) total += op.bytes.size();
    return total;
  }

 private:
  std::vector<Op> ops_;
  uint64_t end_ = 0;
};

class StorageCrashTest : public ::testing::TestWithParam<const Codec*> {};

TEST_P(StorageCrashTest, EveryWritePrefixOpensCleanlyOrServesFullIndex) {
  const Codec& codec = *GetParam();
  std::vector<std::vector<uint32_t>> lists;
  for (size_t i = 0; i < kNumLists; ++i) {
    lists.push_back(RandomSortedList(60 + 150 * i, kRows, 8800 + i));
  }
  const ShardedIndex index = ShardedIndex::Build(codec, lists, kRows, 3);

  RecordingSink sink;
  storage::IndexWriter writer(&sink);
  ASSERT_TRUE(writer.WriteShardedIndex(index).ok());
  ASSERT_TRUE(writer.Finalize().ok());
  const size_t total = sink.TotalStreamBytes();
  const std::vector<uint8_t> full = sink.FileAfter(total);

  // Reference results from the complete file.
  auto complete = MappedIndex::OpenBorrowed(full);
  ASSERT_TRUE(complete.ok()) << complete.status().message();
  ThreadPool pool(2);
  const QueryPlan plan = QueryPlan::Or(
      {QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(3)}),
       QueryPlan::Leaf(2)});
  std::vector<uint32_t> ref;
  {
    IndexService service(&**complete, &pool, IndexServiceOptions{});
    ASSERT_TRUE(service.Query(plan, &ref).ok());
  }

  size_t opened_early = 0;
  for (size_t crash = 0; crash <= total; ++crash) {
    const std::vector<uint8_t> file = sink.FileAfter(crash);
    for (ValidateMode mode : {ValidateMode::kEager, ValidateMode::kLazy}) {
      MappedIndexOptions options;
      options.validate = mode;
      auto mapped = MappedIndex::OpenBorrowed(file, options);
      if (!mapped.ok()) continue;  // clean refusal: the expected outcome
      // A prefix may open only if its bytes already equal the complete
      // file (the tail of the header patch is zero padding over zeros).
      if (file != full) ++opened_early;
      // If it opened, it must serve the complete index bit-identically.
      IndexServiceOptions service_options;
      service_options.cache_enabled = false;
      IndexService service(&**mapped, &pool, service_options);
      std::vector<uint32_t> rows;
      ASSERT_TRUE(service.Query(plan, &rows).ok())
          << "crash at byte " << crash;
      ASSERT_EQ(rows, ref) << "crash at byte " << crash;
      ASSERT_TRUE((*mapped)->ValidateAllPayloads().ok())
          << "crash at byte " << crash;
    }
  }
  // The header patch is the stream's last op, so no prefix whose bytes
  // differ from the complete file may have produced an openable file
  // (zero magic / bad CRC / short file).
  EXPECT_EQ(opened_early, 0u);
}

std::vector<const Codec*> CrashCodecs() {
  return {FindCodec("WAH"), FindCodec("Roaring"), FindCodec("List"),
          FindCodec("SIMDBP128")};
}

std::string ParamName(const ::testing::TestParamInfo<const Codec*>& info) {
  std::string name;
  for (char c : std::string(info.param->Name())) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      name += c;
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(CrashCodecs, StorageCrashTest,
                         ::testing::ValuesIn(CrashCodecs()), ParamName);

}  // namespace
}  // namespace intcomp
