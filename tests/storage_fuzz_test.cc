// File-level corruption fuzzer for the container loader (src/storage).
//
// Where corruption_fuzz_test.cc hammers single codec images, this layer
// hammers whole container files: truncations at and around every section
// boundary, bit flips targeted at each region (header, directory, offset
// table, payloads), offset-table splices between two genuine containers,
// checksum forgeries (corrupt a payload AND patch every enclosing CRC so
// only inner validation can catch it), and uniformly random mutations.
//
// The contract under test: MappedIndex::OpenBorrowed — in BOTH validation
// modes — and any queries run against a successfully opened index either
// fail with a Status or serve the genuine data; they never crash, hang, or
// trip a sanitizer. The CI ASan+UBSan job runs this binary with a raised
// --fuzz-iters; the default keeps tier-1 ctest fast.
//
// This binary has its own main (not gtest_main) to parse --fuzz-iters=N.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/prng.h"
#include "core/query.h"
#include "core/registry.h"
#include "engine/thread_pool.h"
#include "common/fault.h"
#include "service/sharded_index.h"
#include "storage/format.h"
#include "storage/index_writer.h"
#include "storage/mapped_index.h"
#include "test_util.h"

namespace intcomp {

int g_fuzz_iters = 120;  // mutations per (codec, operator family)

namespace {

using storage::MappedIndex;
using storage::MappedIndexOptions;
using storage::ValidateMode;

constexpr uint64_t kRows = 3000;
constexpr size_t kNumLists = 5;
constexpr size_t kShards = 3;

// A few representative codecs keep the fuzz budget per iteration useful;
// the per-image corruption fuzzer already covers every codec's parser.
const std::vector<const Codec*>& FuzzCodecs() {
  static const auto* codecs = [] {
    auto* v = new std::vector<const Codec*>;
    for (const char* name : {"WAH", "EWAH", "Roaring", "List", "VB", "PEF"}) {
      v->push_back(FindCodec(name));
    }
    return v;
  }();
  return *codecs;
}

std::vector<uint8_t> GenuineContainer(const Codec& codec, uint64_t seed) {
  std::vector<std::vector<uint32_t>> lists;
  for (size_t i = 0; i < kNumLists; ++i) {
    lists.push_back(RandomSortedList(100 + 300 * i, kRows, seed + i));
  }
  const ShardedIndex index = ShardedIndex::Build(codec, lists, kRows, kShards);
  std::vector<uint8_t> image;
  EXPECT_TRUE(storage::WriteIndexImage(index, &image).ok());
  return image;
}

// Opens the (possibly hostile) image in `mode`; if it opens, runs a plan
// battery through the service. Success is "no crash": every outcome is
// either a Status or a well-formed result.
void CheckContainer(const std::vector<uint8_t>& image, ValidateMode mode) {
  MappedIndexOptions options;
  options.validate = mode;
  auto mapped = MappedIndex::OpenBorrowed(image, options);
  if (!mapped.ok()) return;
  const MappedIndex& idx = **mapped;
  static ThreadPool& pool = *new ThreadPool(2);  // shared across iterations
  IndexServiceOptions service_options;
  service_options.cache_enabled = false;
  IndexService service(&idx, &pool, service_options);
  std::vector<QueryPlan> plans;
  plans.push_back(QueryPlan::Leaf(0));
  if (idx.NumLists() >= 3) {
    plans.push_back(QueryPlan::And({QueryPlan::Leaf(1), QueryPlan::Leaf(2)}));
    plans.push_back(QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(2)}));
  }
  for (const QueryPlan& plan : plans) {
    std::vector<uint32_t> rows;
    const Status st = service.Query(plan, &rows);
    if (!st.ok()) continue;
    // Served rows must at least be a sane global result. The bound is the
    // OPENED file's claimed row count, not the genuine one: a mutation
    // that forges every checksum can produce a different-but-valid
    // container (e.g. a larger row count), and serving it faithfully is
    // correct — crashing or violating its own claimed domain is not.
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_LT(rows[i], idx.NumRows());
      if (i > 0) {
        ASSERT_LT(rows[i - 1], rows[i]);
      }
    }
  }
}

void CheckBothModes(const std::vector<uint8_t>& image) {
  CheckContainer(image, ValidateMode::kEager);
  CheckContainer(image, ValidateMode::kLazy);
}

class StorageFuzzTest : public ::testing::TestWithParam<const Codec*> {};

TEST_P(StorageFuzzTest, TruncationAtEveryInterestingBoundary) {
  const auto image = GenuineContainer(*GetParam(), TestSeed(7100));
  // Every prefix near the header plus samples across the file, and exact
  // 8-byte section-aligned cuts everywhere (cheap: open is O(metadata)).
  for (size_t n = 0; n <= std::min<size_t>(image.size(), 96); ++n) {
    CheckBothModes(TruncateAt(image, n));
  }
  for (size_t n = 96; n < image.size(); n += 8) {
    CheckBothModes(TruncateAt(image, n));
  }
  for (size_t n = 1; n < image.size(); n += 37) {  // unaligned cuts
    CheckBothModes(TruncateAt(image, n));
  }
}

TEST_P(StorageFuzzTest, TargetedBitFlipsPerRegion) {
  Prng rng(TestSeed(7200));
  const auto image = GenuineContainer(*GetParam(), 7201);
  // Region boundaries from the genuine header (trusted here: we built it).
  uint64_t directory_offset = 0;
  std::memcpy(&directory_offset, image.data() + 24, 8);
  const struct {
    size_t begin, end;
  } regions[] = {
      {0, storage::kHeaderBytes},                          // header
      {static_cast<size_t>(directory_offset), image.size()},  // directory
      {storage::kHeaderBytes, static_cast<size_t>(directory_offset)},  // body
      {0, image.size()},                                   // anywhere
  };
  for (const auto& region : regions) {
    if (region.begin >= region.end) continue;
    for (int iter = 0; iter < g_fuzz_iters; ++iter) {
      std::vector<uint8_t> hostile = image;
      const size_t flips = 1 + rng.NextBounded(8);
      for (size_t f = 0; f < flips; ++f) {
        const size_t bit =
            region.begin * 8 + rng.NextBounded((region.end - region.begin) * 8);
        hostile[bit / 8] ^= uint8_t{1} << (bit % 8);
      }
      CheckBothModes(hostile);
    }
  }
}

TEST_P(StorageFuzzTest, SplicesScramblesAndLengthInflation) {
  Prng rng(TestSeed(7300));
  const auto image_a = GenuineContainer(*GetParam(), 7301);
  const auto image_b = GenuineContainer(*GetParam(), 7302);
  for (int iter = 0; iter < g_fuzz_iters; ++iter) {
    std::vector<uint8_t> hostile;
    switch (iter % 3) {
      case 0:
        hostile = Splice(image_a, image_b, &rng);
        break;
      case 1:
        hostile = image_a;
        Scramble(&hostile, &rng);
        break;
      default:
        hostile = image_a;
        InflateLength(&hostile, &rng);
        break;
    }
    CheckBothModes(hostile);
  }
}

// Corrupt a payload byte, then forge every enclosing checksum so the file
// is structurally perfect: only per-payload validation (CRC or the codec's
// ValidateSet) can reject it — and if it passes those, it must serve as a
// well-formed set, not crash. This pins down the lazy mode's guarantee.
TEST_P(StorageFuzzTest, ChecksumForgeryReachesInnerValidation) {
  Prng rng(TestSeed(7400));
  const auto image = GenuineContainer(*GetParam(), 7401);
  uint64_t directory_offset = 0;
  uint32_t directory_entries = 0;
  std::memcpy(&directory_offset, image.data() + 24, 8);
  std::memcpy(&directory_entries, image.data() + 32, 4);
  for (int iter = 0; iter < g_fuzz_iters; ++iter) {
    std::vector<uint8_t> hostile = image;
    // Flip bits inside the body (payloads + offset table live there).
    const size_t body_begin = storage::kHeaderBytes;
    const size_t body_end = static_cast<size_t>(directory_offset);
    const size_t flips = 1 + rng.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      const size_t bit =
          body_begin * 8 + rng.NextBounded((body_end - body_begin) * 8);
      hostile[bit / 8] ^= uint8_t{1} << (bit % 8);
    }
    if (iter % 2 == 0) {
      // Forge: recompute every section CRC in the directory, the directory
      // CRC, and the header CRC, so outer integrity checks all pass.
      for (uint32_t e = 0; e < directory_entries; ++e) {
        const size_t entry = static_cast<size_t>(directory_offset) +
                             e * storage::kDirEntryBytes;
        uint64_t off = 0, len = 0;
        std::memcpy(&off, hostile.data() + entry + 8, 8);
        std::memcpy(&len, hostile.data() + entry + 16, 8);
        const uint32_t crc = Crc32Of({hostile.data() + off,
                                      static_cast<size_t>(len)});
        std::memcpy(hostile.data() + entry + 24, &crc, 4);
      }
      const uint32_t dir_crc =
          Crc32Of({hostile.data() + directory_offset,
                   directory_entries * storage::kDirEntryBytes});
      std::memcpy(hostile.data() + 36, &dir_crc, 4);
      const uint32_t header_crc =
          Crc32Of({hostile.data(), storage::kHeaderCrcOffset});
      std::memcpy(hostile.data() + 40, &header_crc, 4);
    }
    CheckBothModes(hostile);
  }
}

std::string ParamName(const ::testing::TestParamInfo<const Codec*>& info) {
  std::string name;
  for (char c : std::string(info.param->Name())) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      name += c;
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(FuzzCodecs, StorageFuzzTest,
                         ::testing::ValuesIn(FuzzCodecs()), ParamName);

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const char* value = nullptr;
    if (arg.rfind("--fuzz-iters=", 0) == 0) {
      value = argv[i] + 13;
    } else if (arg == "--fuzz-iters" && i + 1 < argc) {
      value = argv[++i];
    } else {
      continue;
    }
    char* end = nullptr;
    const long iters = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || iters <= 0) {
      std::fprintf(stderr,
                   "--fuzz-iters: expected a positive integer, got '%s'\n",
                   value);
      return 1;
    }
    intcomp::g_fuzz_iters = static_cast<int>(iters);
  }
  return RUN_ALL_TESTS();
}
