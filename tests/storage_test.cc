// Tests for the persistent container format (src/storage): writer
// determinism, mmap round trips, and the layer's core guarantee — an
// IndexService over a MappedIndex (eager and lazy, at several shard
// counts) returns results bit-identical to the in-memory ShardedIndex and
// to the unsharded serial path, for every codec, including results served
// from the compressed cache and across SwapSnapshot remaps.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/query.h"
#include "core/registry.h"
#include "engine/thread_pool.h"
#include "service/sharded_index.h"
#include "storage/index_writer.h"
#include "storage/mapped_index.h"
#include "test_util.h"

namespace intcomp {
namespace {

using storage::MappedIndex;
using storage::MappedIndexOptions;
using storage::ValidateMode;
using storage::WriteIndexFile;
using storage::WriteIndexImage;

constexpr uint64_t kRows = 4000;
constexpr size_t kNumLists = 8;

const std::vector<std::vector<uint32_t>>& Lists() {
  static const auto* lists = [] {
    auto* l = new std::vector<std::vector<uint32_t>>;
    for (size_t i = 0; i < kNumLists; ++i) {
      l->push_back(RandomSortedList(150 + 450 * i, kRows, 600 + i));
    }
    return l;
  }();
  return *lists;
}

std::vector<QueryPlan> Plans() {
  std::vector<QueryPlan> plans;
  plans.push_back(QueryPlan::Leaf(0));
  plans.push_back(QueryPlan::Leaf(7));
  plans.push_back(QueryPlan::Or(
      {QueryPlan::Leaf(1), QueryPlan::Leaf(3), QueryPlan::Leaf(5)}));
  plans.push_back(QueryPlan::And(
      {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}),
       QueryPlan::Or({QueryPlan::Leaf(6), QueryPlan::Leaf(7)})}));
  plans.push_back(QueryPlan::And({QueryPlan::Leaf(2), QueryPlan::Leaf(4)}));
  return plans;
}

// Unsharded serial reference over the full lists.
std::vector<std::vector<uint32_t>> SerialReference(const Codec& codec) {
  std::vector<std::unique_ptr<CompressedSet>> sets;
  std::vector<const CompressedSet*> ptrs;
  for (const auto& list : Lists()) {
    sets.push_back(codec.Encode(list, kRows));
    ptrs.push_back(sets.back().get());
  }
  std::vector<std::vector<uint32_t>> ref;
  for (const QueryPlan& plan : Plans()) {
    ref.push_back(EvaluatePlan(codec, plan, ptrs));
  }
  return ref;
}

std::vector<const Codec*> AllAndExtensions() {
  // Shared roster (core/registry.h): paper methods + extensions, so this
  // suite can never drift from the other differential suites.
  return {AllCodecsWithExtensions().begin(), AllCodecsWithExtensions().end()};
}

std::string ParamName(const ::testing::TestParamInfo<const Codec*>& info) {
  std::string name;
  for (char c : std::string(info.param->Name())) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      name += c;
    } else if (c == '*') {
      name += "Star";
    }
  }
  return name;
}

class StorageEquivalenceTest : public ::testing::TestWithParam<const Codec*> {
};

TEST_P(StorageEquivalenceTest, MappedMatchesInMemoryAndSerialIncludingCache) {
  const Codec& codec = *GetParam();
  const auto plans = Plans();
  const auto ref = SerialReference(codec);

  ThreadPool pool(3);
  for (size_t shards : {size_t{1}, size_t{3}, size_t{8}}) {
    SCOPED_TRACE(shards);
    const ShardedIndex mem =
        ShardedIndex::Build(codec, Lists(), kRows, shards);

    // The writer is deterministic: same index, byte-identical container.
    std::vector<uint8_t> image, image2;
    ASSERT_TRUE(WriteIndexImage(mem, &image).ok());
    ASSERT_TRUE(WriteIndexImage(mem, &image2).ok());
    ASSERT_EQ(image, image2);

    for (ValidateMode mode : {ValidateMode::kEager, ValidateMode::kLazy}) {
      SCOPED_TRACE(mode == ValidateMode::kEager ? "eager" : "lazy");
      MappedIndexOptions options;
      options.validate = mode;
      auto mapped = MappedIndex::OpenBorrowed(image, options);
      ASSERT_TRUE(mapped.ok()) << mapped.status().message();
      const MappedIndex& idx = **mapped;
      ASSERT_EQ(&idx.codec(), &codec);
      ASSERT_EQ(idx.NumShards(), mem.NumShards());
      ASSERT_EQ(idx.NumLists(), mem.NumLists());
      ASSERT_EQ(idx.NumRows(), mem.NumRows());

      // On-disk payloads are exactly the codec's serialized images.
      for (size_t s = 0; s < shards; ++s) {
        std::vector<uint8_t> expect;
        codec.Serialize(*mem.ShardSets(s)[1], &expect);
        const auto got = idx.PayloadBytes(s, 1);
        ASSERT_EQ(std::vector<uint8_t>(got.begin(), got.end()), expect);
      }

      IndexServiceOptions service_options;
      service_options.cache.require_second_touch = false;
      IndexService mem_service(&mem, &pool, service_options);
      IndexService map_service(&idx, &pool, service_options);
      // Round 0 evaluates and fills the cache; round 1 is served from it
      // and must stay bit-identical.
      for (int round = 0; round < 2; ++round) {
        for (size_t q = 0; q < plans.size(); ++q) {
          SCOPED_TRACE(q);
          std::vector<uint32_t> mem_rows, map_rows;
          ASSERT_TRUE(mem_service.Query(plans[q], &mem_rows).ok());
          ASSERT_TRUE(map_service.Query(plans[q], &map_rows).ok());
          ASSERT_EQ(map_rows, ref[q]) << "round " << round;
          ASSERT_EQ(mem_rows, ref[q]) << "round " << round;
        }
      }
      EXPECT_EQ(map_service.Stats().cache.misses, plans.size());

      if (mode == ValidateMode::kEager) {
        // Eager open materialized everything up front.
        EXPECT_EQ(idx.MaterializedPayloads(), shards * kNumLists);
      } else {
        // Lazy open materialized only the touched lists (all of them here,
        // since the plan battery covers every list — but never more than
        // the file holds, and ValidateAllPayloads is an idempotent warmup).
        EXPECT_LE(idx.MaterializedPayloads(), shards * kNumLists);
        ASSERT_TRUE(idx.ValidateAllPayloads().ok());
        EXPECT_EQ(idx.MaterializedPayloads(), shards * kNumLists);
      }
      if (codec.SupportsViewDeserialize()) {
        EXPECT_EQ(idx.ZeroCopyPayloads(), idx.MaterializedPayloads());
      } else {
        EXPECT_EQ(idx.ZeroCopyPayloads(), 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, StorageEquivalenceTest,
                         ::testing::ValuesIn(AllAndExtensions()), ParamName);

// ------------------------------------------------------- file round trips

TEST(StorageFileTest, WriteOpenQueryRoundTrip) {
  for (const char* name : {"WAH", "Roaring", "List", "VB"}) {
    SCOPED_TRACE(name);
    const Codec& codec = *FindCodec(name);
    const ShardedIndex mem = ShardedIndex::Build(codec, Lists(), kRows, 4);
    const std::string path =
        ::testing::TempDir() + "/storage_roundtrip_" + name + ".bin";
    ASSERT_TRUE(WriteIndexFile(path, mem).ok());

    auto mapped = MappedIndex::Open(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().message();
    EXPECT_GT((*mapped)->SizeInBytes(), 0u);
    EXPECT_LE((*mapped)->SizeInBytes(), (*mapped)->FileBytes());

    ThreadPool pool(2);
    IndexService service(&**mapped, &pool, IndexServiceOptions{});
    const auto ref = SerialReference(codec);
    const auto plans = Plans();
    for (size_t q = 0; q < plans.size(); ++q) {
      std::vector<uint32_t> rows;
      ASSERT_TRUE(service.Query(plans[q], &rows).ok());
      ASSERT_EQ(rows, ref[q]) << "plan " << q;
    }
    std::remove(path.c_str());
  }
}

TEST(StorageFileTest, OpenMissingFileFailsCleanly) {
  auto mapped = MappedIndex::Open(::testing::TempDir() + "/does_not_exist.bin");
  ASSERT_FALSE(mapped.ok());
}

// ------------------------------------------------ snapshot swap + caching

TEST(StorageSwapTest, SwapInvalidatesCachedResults) {
  const Codec& codec = *FindCodec("EWAH");
  const size_t shards = 3;
  const ShardedIndex mem = ShardedIndex::Build(codec, Lists(), kRows, shards);

  // A second index with visibly different data for list 0.
  std::vector<std::vector<uint32_t>> other_lists = Lists();
  other_lists[0] = RandomSortedList(900, kRows, 999);
  const ShardedIndex other =
      ShardedIndex::Build(codec, other_lists, kRows, shards);
  std::vector<uint8_t> image;
  ASSERT_TRUE(WriteIndexImage(other, &image).ok());
  auto mapped = MappedIndex::OpenBorrowed(image);
  ASSERT_TRUE(mapped.ok());

  ThreadPool pool(2);
  IndexServiceOptions options;
  options.cache.require_second_touch = false;
  IndexService service(&mem, &pool, options);

  const QueryPlan plan = QueryPlan::Leaf(0);
  std::vector<uint32_t> rows;
  ASSERT_TRUE(service.Query(plan, &rows).ok());
  ASSERT_EQ(rows, Lists()[0]);
  // Cached now: a second query hits.
  ASSERT_TRUE(service.Query(plan, &rows).ok());
  EXPECT_EQ(service.Stats().cache.hits, 1u);

  // Remap: the generation bump must prevent the stale cached result.
  ASSERT_TRUE(service.SwapSnapshot(&**mapped).ok());
  ASSERT_TRUE(service.Query(plan, &rows).ok());
  ASSERT_EQ(rows, other_lists[0]);

  // Shard-count mismatch is rejected (cache generations are per shard).
  const ShardedIndex narrow = ShardedIndex::Build(codec, Lists(), kRows, 2);
  EXPECT_FALSE(service.SwapSnapshot(&narrow).ok());
  EXPECT_FALSE(service.SwapSnapshot(nullptr).ok());
}

// --------------------------------------------- concurrent lazy first touch

TEST(StorageConcurrencyTest, LazyMaterializationIsThreadSafe) {
  const Codec& codec = *FindCodec("Roaring");
  const ShardedIndex mem = ShardedIndex::Build(codec, Lists(), kRows, 8);
  std::vector<uint8_t> image;
  ASSERT_TRUE(WriteIndexImage(mem, &image).ok());
  MappedIndexOptions options;
  options.validate = ValidateMode::kLazy;
  auto mapped = MappedIndex::OpenBorrowed(image, options);
  ASSERT_TRUE(mapped.ok());

  ThreadPool pool(4);
  IndexService service(&**mapped, &pool, IndexServiceOptions{});
  const auto plans = Plans();
  const auto ref = SerialReference(codec);

  // Several client threads race first-touch materialization of the same
  // lists across the same shards (the TSan job runs this binary).
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        for (size_t q = 0; q < plans.size(); ++q) {
          std::vector<uint32_t> rows;
          if (!service.Query(plans[q], &rows).ok() || rows != ref[q]) {
            failed.store(true);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ((*mapped)->MaterializedPayloads(), 8 * kNumLists);
}

// ----------------------------------------------------------- writer misuse

TEST(StorageWriterTest, MisuseReturnsStatusNotCorruptOutput) {
  const Codec& codec = *FindCodec("WAH");
  const ShardedIndex mem = ShardedIndex::Build(codec, Lists(), kRows, 2);
  std::vector<uint8_t> image;
  storage::VectorSink sink(&image);
  storage::IndexWriter writer(&sink);
  EXPECT_FALSE(writer.Finalize().ok());  // nothing written yet
  ASSERT_TRUE(writer.WriteShardedIndex(mem).ok());
  EXPECT_FALSE(writer.WriteShardedIndex(mem).ok());  // write-once
  const uint8_t blob[] = {1, 2, 3};
  // Opaque sections must not shadow v1 ids.
  EXPECT_FALSE(writer.AppendOpaqueSection(storage::kSectionMeta, blob).ok());
  ASSERT_TRUE(
      writer.AppendOpaqueSection(storage::kFirstUnassignedSectionId, blob)
          .ok());
  ASSERT_TRUE(writer.Finalize().ok());
  EXPECT_FALSE(writer.Finalize().ok());  // finalize-once

  // The extension section does not disturb readers.
  auto mapped = MappedIndex::OpenBorrowed(image);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  EXPECT_EQ((*mapped)->NumLists(), kNumLists);
}

}  // namespace
}  // namespace intcomp
