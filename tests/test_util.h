// Shared helpers for the intcomp test suite.

#ifndef INTCOMP_TESTS_TEST_UTIL_H_
#define INTCOMP_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

#include "common/prng.h"

namespace intcomp {

// Sorted duplicate-free list of n values < domain (reference generator,
// independent of workload/synthetic.h).
inline std::vector<uint32_t> RandomSortedList(size_t n, uint64_t domain,
                                              uint64_t seed) {
  Prng rng(seed);
  std::vector<uint32_t> v;
  v.reserve(n + 8);
  while (v.size() < n) {
    for (size_t i = v.size(); i < n; ++i) {
      v.push_back(static_cast<uint32_t>(rng.NextBounded(domain)));
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return v;
}

inline std::vector<uint32_t> RefIntersect(const std::vector<uint32_t>& a,
                                          const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

inline std::vector<uint32_t> RefUnion(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace intcomp

#endif  // INTCOMP_TESTS_TEST_UTIL_H_
