// Shared helpers for the intcomp test suite.
//
// Seed reproducibility: every helper that consumes a PRNG seed records it,
// and a test-event listener (registered once per binary from this header)
// prints the most recently used seed whenever an assertion fails, so any
// randomized/property failure is replayable. Tests that derive their seeds
// from TestSeed() additionally honor the INTCOMP_TEST_SEED environment
// variable, which overrides the base seed for a replay run:
//
//   INTCOMP_TEST_SEED=12345 ./tests/metamorphic_test

#ifndef INTCOMP_TESTS_TEST_UTIL_H_
#define INTCOMP_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace intcomp {

namespace test_internal {

inline std::atomic<uint64_t>& LastSeed() {
  static std::atomic<uint64_t> seed{0};
  return seed;
}
inline std::atomic<bool>& SeedUsed() {
  static std::atomic<bool> used{false};
  return used;
}

// Prints the last recorded seed next to any assertion failure. Registered
// once per test binary by the inline global below; safe to register before
// InitGoogleTest (listeners are only consulted while tests run).
class SeedFailureReporter : public ::testing::EmptyTestEventListener {
 public:
  void OnTestPartResult(const ::testing::TestPartResult& result) override {
    if (!result.failed() || !SeedUsed().load(std::memory_order_relaxed)) {
      return;
    }
    const unsigned long long seed =
        LastSeed().load(std::memory_order_relaxed);
    std::fprintf(stderr,
                 "[test_util] last PRNG seed before this failure: %llu "
                 "(replay with INTCOMP_TEST_SEED=%llu where the test uses "
                 "TestSeed())\n",
                 seed, seed);
  }
};

inline bool RegisterSeedFailureReporter() {
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new SeedFailureReporter);  // gtest takes ownership
  return true;
}

inline const bool kSeedReporterRegistered = RegisterSeedFailureReporter();

}  // namespace test_internal

// Records `seed` as the most recently used one (shown on assertion failure).
inline uint64_t NoteSeed(uint64_t seed) {
  test_internal::LastSeed().store(seed, std::memory_order_relaxed);
  test_internal::SeedUsed().store(true, std::memory_order_relaxed);
  return seed;
}

// Base seed for randomized tests: `default_seed` unless the
// INTCOMP_TEST_SEED environment variable overrides it (for replaying a
// reported failure). Records the chosen seed.
inline uint64_t TestSeed(uint64_t default_seed) {
  static const char* env = std::getenv("INTCOMP_TEST_SEED");
  uint64_t seed = default_seed;
  if (env != nullptr && *env != '\0') {
    seed = std::strtoull(env, nullptr, 0);
  }
  return NoteSeed(seed);
}

// Sorted duplicate-free list of n values < domain (reference generator,
// independent of workload/synthetic.h).
inline std::vector<uint32_t> RandomSortedList(size_t n, uint64_t domain,
                                              uint64_t seed) {
  Prng rng(NoteSeed(seed));
  std::vector<uint32_t> v;
  v.reserve(n + 8);
  while (v.size() < n) {
    for (size_t i = v.size(); i < n; ++i) {
      v.push_back(static_cast<uint32_t>(rng.NextBounded(domain)));
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return v;
}

inline std::vector<uint32_t> RefIntersect(const std::vector<uint32_t>& a,
                                          const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

inline std::vector<uint32_t> RefUnion(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

// out = [0, domain) \ a — the complement list the metamorphic identities
// (De Morgan, A ∩ A^c = ∅) are phrased over.
inline std::vector<uint32_t> RefComplement(const std::vector<uint32_t>& a,
                                           uint64_t domain) {
  std::vector<uint32_t> out;
  out.reserve(static_cast<size_t>(domain) - a.size());
  size_t i = 0;
  for (uint64_t v = 0; v < domain; ++v) {
    if (i < a.size() && a[i] == v) {
      ++i;
    } else {
      out.push_back(static_cast<uint32_t>(v));
    }
  }
  return out;
}

}  // namespace intcomp

#endif  // INTCOMP_TESTS_TEST_UTIL_H_
