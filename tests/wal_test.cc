// WAL unit + crash-consistency tests (src/storage/wal.h).
//
// The pinned property: recovery from ANY byte prefix of the log lands on a
// state equal to some record prefix of the operation stream — never a torn
// record, never an invented one. Plus writer mechanics: sync cadence,
// reopen-append sequencing, fault-injected appends, and the tampering
// detections (CRC-valid-but-malformed payloads, sequence gaps) that
// distinguish "torn by a crash" from "modified by something else".

#include "storage/wal.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/status.h"
#include "test_util.h"

namespace intcomp {
namespace {

using storage::ReplayWal;
using storage::WalOp;
using storage::WalOptions;
using storage::WalRecord;
using storage::WalReplayStats;
using storage::WalWriter;
using storage::kWalHeaderBytes;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::vector<uint8_t> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return bytes;
  std::fseek(f, 0, SEEK_END);
  bytes.resize(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// One logical update for building logs and comparing replays.
struct Op {
  WalOp op;
  uint32_t list;
  std::vector<uint32_t> rows;
};

std::vector<Op> MakeOps(size_t n, uint64_t seed) {
  Prng rng(seed);
  std::vector<Op> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Op op;
    op.op = rng.NextBounded(3) == 0 ? WalOp::kRemove : WalOp::kInsert;
    op.list = static_cast<uint32_t>(rng.NextBounded(8));
    op.rows = RandomSortedList(1 + rng.NextBounded(20), 10000, rng.Next());
    ops.push_back(std::move(op));
  }
  return ops;
}

void AppendOps(WalWriter& w, const std::vector<Op>& ops) {
  for (const Op& op : ops) {
    ASSERT_TRUE(w.AppendUpdate(op.op, op.list, op.rows).ok());
  }
}

// Replays `path`, collecting updates; EXPECTs no intra-record tearing.
StatusOr<WalReplayStats> Collect(const std::string& path,
                                 std::vector<Op>* out) {
  out->clear();
  return ReplayWal(path, [&](const WalRecord& rec) {
    if (rec.op != WalOp::kCheckpoint) {
      out->push_back(Op{rec.op, rec.list,
                        std::vector<uint32_t>(rec.rows.begin(),
                                              rec.rows.end())});
    }
    return Status::Ok();
  });
}

void ExpectOpsEqual(const std::vector<Op>& got, const std::vector<Op>& want,
                    size_t want_count) {
  ASSERT_EQ(got.size(), want_count);
  for (size_t i = 0; i < want_count; ++i) {
    EXPECT_EQ(static_cast<int>(got[i].op), static_cast<int>(want[i].op));
    EXPECT_EQ(got[i].list, want[i].list);
    EXPECT_EQ(got[i].rows, want[i].rows);
  }
}

TEST(WalTest, RoundTripUpdatesAndCheckpoint) {
  const std::string path = TempPath("wal_roundtrip.log");
  const std::vector<Op> ops = MakeOps(17, TestSeed(0xabc1));
  {
    auto w = WalWriter::Create(path);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    AppendOps(**w, ops);
    ASSERT_TRUE((*w)->AppendCheckpoint(42).ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  std::vector<Op> got;
  uint64_t checkpoint = 0;
  auto stats = ReplayWal(path, [&](const WalRecord& rec) {
    if (rec.op == WalOp::kCheckpoint) {
      checkpoint = rec.checkpoint_id;
    } else {
      got.push_back(Op{rec.op, rec.list,
                      std::vector<uint32_t>(rec.rows.begin(),
                                            rec.rows.end())});
    }
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().existed);
  EXPECT_EQ(stats.value().records, ops.size() + 1);
  EXPECT_FALSE(stats.value().tail_truncated);
  EXPECT_EQ(stats.value().next_seq, ops.size() + 2);
  EXPECT_EQ(checkpoint, 42u);
  ExpectOpsEqual(got, ops, ops.size());
}

TEST(WalTest, MissingFileIsEmptyLog) {
  auto stats = ReplayWal(TempPath("wal_never_created.log"),
                         [](const WalRecord&) { return Status::Ok(); });
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats.value().existed);
  EXPECT_EQ(stats.value().records, 0u);
  EXPECT_EQ(stats.value().next_seq, 1u);
}

// The crash-consistency property, exhaustively: EVERY byte prefix of a real
// log replays to an exact record prefix of the op stream.
TEST(WalTest, EveryBytePrefixRecoversARecordPrefix) {
  const std::string path = TempPath("wal_prefix_src.log");
  const std::vector<Op> ops = MakeOps(12, TestSeed(0xabc2));
  {
    auto w = WalWriter::Create(path);
    ASSERT_TRUE(w.ok());
    AppendOps(**w, ops);
    ASSERT_TRUE((*w)->Close().ok());
  }
  const std::vector<uint8_t> bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), kWalHeaderBytes);

  const std::string prefix_path = TempPath("wal_prefix_cut.log");
  size_t full_replays = 0;
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteFile(prefix_path, TruncateAt(bytes, cut));
    std::vector<Op> got;
    auto stats = Collect(prefix_path, &got);
    ASSERT_TRUE(stats.ok()) << "cut=" << cut << ": "
                            << stats.status().ToString();
    ASSERT_LE(got.size(), ops.size()) << "cut=" << cut;
    ExpectOpsEqual(got, ops, got.size());  // exact record prefix, no tearing
    // The tail is reported torn iff bytes were dropped past the valid part.
    EXPECT_EQ(stats.value().tail_truncated,
              cut > stats.value().valid_bytes || (cut > 0 && cut < kWalHeaderBytes))
        << "cut=" << cut;
    EXPECT_EQ(stats.value().next_seq, got.size() + 1);
    if (got.size() == ops.size()) ++full_replays;
  }
  // Only cuts at/after the last frame's end replay everything.
  EXPECT_GT(full_replays, 0u);
}

TEST(WalTest, SyncCadence) {
  // Cadence 1: one fsync per record. Cadence 4: one per four. Cadence 0:
  // only the explicit Sync/Close ones.
  struct Case {
    size_t cadence;
    uint64_t expected_syncs_before_close;
  };
  for (const Case c : {Case{1, 8}, Case{4, 2}, Case{0, 0}}) {
    const std::string path = TempPath("wal_sync_cadence.log");
    WalOptions options;
    options.sync_every_records = c.cadence;
    auto w = WalWriter::Create(path, options);
    ASSERT_TRUE(w.ok());
    const std::vector<Op> ops = MakeOps(8, 0x5eed);
    AppendOps(**w, ops);
    EXPECT_EQ((*w)->Syncs(), c.expected_syncs_before_close)
        << "cadence=" << c.cadence;
    ASSERT_TRUE((*w)->Close().ok());  // close always syncs
    EXPECT_EQ((*w)->Records(), ops.size());
  }
}

TEST(WalTest, ReopenContinuesSequence) {
  const std::string path = TempPath("wal_reopen.log");
  const std::vector<Op> ops = MakeOps(9, TestSeed(0xabc3));
  {
    auto w = WalWriter::Create(path);
    ASSERT_TRUE(w.ok());
    AppendOps(**w, {ops.begin(), ops.begin() + 5});
    ASSERT_TRUE((*w)->Close().ok());
  }
  {
    std::vector<Op> got;
    auto stats = Collect(path, &got);
    ASSERT_TRUE(stats.ok());
    auto w = WalWriter::OpenForAppend(path, *stats);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    EXPECT_EQ((*w)->NextSeq(), 6u);
    AppendOps(**w, {ops.begin() + 5, ops.end()});
    ASSERT_TRUE((*w)->Close().ok());
  }
  std::vector<Op> got;
  auto stats = Collect(path, &got);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, ops.size());
  EXPECT_FALSE(stats.value().tail_truncated);
  ExpectOpsEqual(got, ops, ops.size());
}

TEST(WalTest, ReopenAfterTornTailTruncatesAndResumes) {
  const std::string path = TempPath("wal_torn_reopen.log");
  const std::vector<Op> ops = MakeOps(6, TestSeed(0xabc4));
  {
    auto w = WalWriter::Create(path);
    ASSERT_TRUE(w.ok());
    AppendOps(**w, ops);
    ASSERT_TRUE((*w)->Close().ok());
  }
  // Tear the file mid-final-frame, then reopen and append one more record.
  std::vector<uint8_t> bytes = ReadFile(path);
  WriteFile(path, TruncateAt(bytes, bytes.size() - 3));
  std::vector<Op> got;
  auto stats = Collect(path, &got);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().tail_truncated);
  ASSERT_EQ(got.size(), ops.size() - 1);
  auto w = WalWriter::OpenForAppend(path, *stats);
  ASSERT_TRUE(w.ok());
  const Op extra{WalOp::kInsert, 3, {7, 8, 9}};
  ASSERT_TRUE((*w)->AppendUpdate(extra.op, extra.list, extra.rows).ok());
  ASSERT_TRUE((*w)->Close().ok());

  auto final_stats = Collect(path, &got);
  ASSERT_TRUE(final_stats.ok());
  EXPECT_FALSE(final_stats.value().tail_truncated);
  ASSERT_EQ(got.size(), ops.size());  // ops[0..n-2] + extra
  ExpectOpsEqual({got.begin(), got.end() - 1}, ops, ops.size() - 1);
  EXPECT_EQ(got.back().rows, extra.rows);
}

// Locate the frames of a log: returns each frame's start offset (after the
// 8-byte file header).
std::vector<size_t> FrameOffsets(const std::vector<uint8_t>& bytes) {
  std::vector<size_t> offsets;
  size_t pos = kWalHeaderBytes;
  while (pos + 8 <= bytes.size()) {
    offsets.push_back(pos);
    uint32_t len = 0;
    std::memcpy(&len, bytes.data() + pos, 4);
    pos += 8 + len;
  }
  return offsets;
}

TEST(WalTest, SequenceGapIsCorruptNotTorn) {
  const std::string path = TempPath("wal_seqgap.log");
  {
    auto w = WalWriter::Create(path);
    ASSERT_TRUE(w.ok());
    AppendOps(**w, MakeOps(4, TestSeed(0xabc5)));
    ASSERT_TRUE((*w)->Close().ok());
  }
  // Excise the second frame entirely: every remaining frame is CRC-valid
  // but the sequence numbers jump 1 -> 3, which no crash can produce.
  std::vector<uint8_t> bytes = ReadFile(path);
  const std::vector<size_t> frames = FrameOffsets(bytes);
  ASSERT_GE(frames.size(), 3u);
  bytes.erase(bytes.begin() + static_cast<long>(frames[1]),
              bytes.begin() + static_cast<long>(frames[2]));
  WriteFile(path, bytes);
  std::vector<Op> got;
  auto stats = Collect(path, &got);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruptData);
}

TEST(WalTest, CrcValidMalformedPayloadIsCorrupt) {
  const std::string path = TempPath("wal_forged.log");
  {
    auto w = WalWriter::Create(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->AppendUpdate(WalOp::kInsert, 1, std::vector<uint32_t>{
                                       5, 6, 7}).ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  // Forge: swap two rows so they are no longer sorted, then re-patch the
  // frame CRC so the damage passes the checksum.
  std::vector<uint8_t> bytes = ReadFile(path);
  const std::vector<size_t> frames = FrameOffsets(bytes);
  ASSERT_EQ(frames.size(), 1u);
  const size_t payload = frames[0] + 8;
  uint32_t len = 0;
  std::memcpy(&len, bytes.data() + frames[0], 4);
  // Rows start at payload + 8 (seq) + 1 (op) + 4 (list) + 4 (count).
  std::swap(bytes[payload + 17], bytes[payload + 21]);
  std::swap(bytes[payload + 18], bytes[payload + 22]);
  std::swap(bytes[payload + 19], bytes[payload + 23]);
  std::swap(bytes[payload + 20], bytes[payload + 24]);
  const uint32_t crc = Crc32Of({bytes.data() + payload, len});
  std::memcpy(bytes.data() + frames[0] + 4, &crc, 4);
  WriteFile(path, bytes);
  std::vector<Op> got;
  auto stats = Collect(path, &got);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruptData);
}

TEST(WalTest, BadMagicIsCorrupt) {
  const std::string path = TempPath("wal_badmagic.log");
  WriteFile(path, std::vector<uint8_t>(64, 0x5a));
  std::vector<Op> got;
  auto stats = Collect(path, &got);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruptData);
}

TEST(WalTest, TransientAppendFaultsAreRetried) {
  fault::ScopedDisarm disarm;
  const std::string path = TempPath("wal_transient.log");
  auto w = WalWriter::Create(path);
  ASSERT_TRUE(w.ok());
  // Two transient failures, then healthy: the default 4-attempt budget
  // absorbs them and the append succeeds.
  fault::FaultInjector::Global().ArmTransientFirst(
      2, fault::SiteBit(fault::Site::kWalAppend));
  ASSERT_TRUE(
      (*w)->AppendUpdate(WalOp::kInsert, 0, std::vector<uint32_t>{1, 2})
          .ok());
  fault::FaultInjector::Global().Disarm();
  ASSERT_TRUE((*w)->Close().ok());
  std::vector<Op> got;
  auto stats = Collect(path, &got);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, 1u);
  EXPECT_FALSE(stats.value().tail_truncated);
}

TEST(WalTest, ExhaustedRetriesLatchTheWriter) {
  fault::ScopedDisarm disarm;
  const std::string path = TempPath("wal_exhausted.log");
  WalOptions options;
  options.retry.max_attempts = 2;
  options.retry.base_backoff_us = 1;
  auto w = WalWriter::Create(path, options);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(
      (*w)->AppendUpdate(WalOp::kInsert, 0, std::vector<uint32_t>{1}).ok());
  // Permanently failing appends: the writer latches broken and fails fast.
  fault::FaultInjector::Global().ArmRates(
      {0.0, 1.0, 0.0}, 1, fault::SiteBit(fault::Site::kWalAppend));
  Status st =
      (*w)->AppendUpdate(WalOp::kInsert, 1, std::vector<uint32_t>{2});
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE((*w)->Broken());
  fault::FaultInjector::Global().Disarm();
  EXPECT_FALSE(
      (*w)->AppendUpdate(WalOp::kInsert, 2, std::vector<uint32_t>{3}).ok());
  // The record before the failure is still fully recoverable.
  std::vector<Op> got;
  auto stats = Collect(path, &got);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, 1u);
}

TEST(WalTest, CrashAtOpLeavesRecoverableTornFrame) {
  fault::ScopedDisarm disarm;
  const std::string path = TempPath("wal_crash.log");
  const std::vector<Op> ops = MakeOps(10, TestSeed(0xabc6));
  auto w = WalWriter::Create(path);
  ASSERT_TRUE(w.ok());
  // Crash on the 4th WAL append. Appends 1-3 are durable; the 4th leaves a
  // seeded short write (torn frame) and every later append fails.
  fault::FaultInjector::Global().ArmCrashAtOp(
      4, TestSeed(0xabc7), fault::SiteBit(fault::Site::kWalAppend));
  size_t ok_count = 0;
  for (const Op& op : ops) {
    if ((*w)->AppendUpdate(op.op, op.list, op.rows).ok()) ++ok_count;
  }
  EXPECT_EQ(ok_count, 3u);
  EXPECT_TRUE(fault::FaultInjector::Global().Crashed());
  fault::FaultInjector::Global().Disarm();

  // "Restart": replay accepts exactly the pre-crash records.
  std::vector<Op> got;
  auto stats = Collect(path, &got);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(got.size(), ok_count);
  ExpectOpsEqual(got, ops, ok_count);
}

TEST(WalTest, InjectedAllocFailureInReplayIsTransient) {
  fault::ScopedDisarm disarm;
  const std::string path = TempPath("wal_allocfail.log");
  {
    auto w = WalWriter::Create(path);
    ASSERT_TRUE(w.ok());
    AppendOps(**w, MakeOps(3, 0x5eed));
    ASSERT_TRUE((*w)->Close().ok());
  }
  fault::FaultInjector::Global().ArmTransientFirst(
      1, fault::SiteBit(fault::Site::kAlloc));
  std::vector<Op> got;
  auto stats = Collect(path, &got);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);
  fault::FaultInjector::Global().Disarm();
  auto retry = Collect(path, &got);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value().records, 3u);
}

}  // namespace
}  // namespace intcomp
