// Tests for the synthetic generators and the real-dataset stand-ins.

#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

#include "workload/datasets.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

bool IsSortedUnique(const std::vector<uint32_t>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] <= v[i - 1]) return false;
  }
  return true;
}

TEST(UniformTest, SizeSortednessRangeDeterminism) {
  auto a = GenerateUniform(10000, kPaperDomain, 7);
  EXPECT_EQ(a.size(), 10000u);
  EXPECT_TRUE(IsSortedUnique(a));
  EXPECT_LT(a.back(), kPaperDomain);
  EXPECT_EQ(a, GenerateUniform(10000, kPaperDomain, 7));
  EXPECT_NE(a, GenerateUniform(10000, kPaperDomain, 8));
}

TEST(UniformTest, SpreadsAcrossDomain) {
  auto a = GenerateUniform(10000, 1u << 30, 9);
  // Mean of uniform values should be near domain/2.
  double mean = 0;
  for (uint32_t v : a) mean += v;
  mean /= a.size();
  EXPECT_NEAR(mean, (1u << 29), (1u << 29) * 0.05);
}

TEST(UniformTest, DenseSampling) {
  auto a = GenerateUniform(5000, 10000, 3);  // density 0.5
  EXPECT_EQ(a.size(), 5000u);
  EXPECT_TRUE(IsSortedUnique(a));
  EXPECT_LT(a.back(), 10000u);
}

TEST(ZipfTest, ConcentratesAtDomainStart) {
  auto a = GenerateZipf(100000, kPaperDomain, 1.0, 11);
  EXPECT_EQ(a.size(), 100000u);
  EXPECT_TRUE(IsSortedUnique(a));
  // The head of the domain is near-fully populated: with n/H ~ 4600, the
  // first few thousand ranks have inclusion probability ~1.
  EXPECT_EQ(a[0], 0u);
  EXPECT_LT(a[1000], 1300u);
  // The median element is far below the uniform median (~domain/2).
  EXPECT_LT(a[a.size() / 2], kPaperDomain / 8);
}

TEST(ZipfTest, Deterministic) {
  EXPECT_EQ(GenerateZipf(5000, kPaperDomain, 1.0, 3),
            GenerateZipf(5000, kPaperDomain, 1.0, 3));
}

TEST(MarkovTest, DensityAndClustering) {
  const size_t n = 50000;
  const uint64_t domain = 1u << 22;  // density ~1.2%
  auto a = GenerateMarkov(n, domain, 8.0, 13);
  EXPECT_EQ(a.size(), n);
  EXPECT_TRUE(IsSortedUnique(a));
  // Clustering: many adjacent pairs (runs of 1s) compared to uniform.
  size_t adjacent = 0;
  for (size_t i = 1; i < a.size(); ++i) {
    if (a[i] == a[i - 1] + 1) ++adjacent;
  }
  EXPECT_GT(adjacent, a.size() / 4);
  // Density near target: the last element should be within ~3x of domain.
  EXPECT_GT(a.back(), domain / 4);
}

TEST(DatasetsTest, SsbQueryShapes) {
  auto queries = MakeSsbQueries(1, 42);
  ASSERT_EQ(queries.size(), 4u);
  EXPECT_EQ(queries[0].name, "Q1.1");
  EXPECT_EQ(queries[0].lists.size(), 3u);
  EXPECT_NEAR(static_cast<double>(queries[0].lists[0].size()), 6000000.0 / 7,
              6000000.0 / 7 * 0.01);
  EXPECT_EQ(queries[2].name, "Q3.4");
  EXPECT_EQ(queries[2].lists.size(), 5u);
  EXPECT_EQ(queries[2].plan.op, QueryPlan::Op::kAnd);
  ASSERT_EQ(queries[2].plan.children.size(), 3u);
  EXPECT_EQ(queries[2].plan.children[0].op, QueryPlan::Op::kOr);
}

TEST(DatasetsTest, ExactPaperCardinalities) {
  auto kdd = MakeKddcupQueries(1);
  EXPECT_EQ(kdd[0].lists[0].size(), 2833545u);
  EXPECT_EQ(kdd[0].lists[1].size(), 4195364u);
  EXPECT_EQ(kdd[1].lists[0].size(), 1051u);
  auto kegg = MakeKeggQueries(1);
  EXPECT_EQ(kegg[0].lists[0].size(), 16965u);
  EXPECT_EQ(kegg[1].lists[1].size(), 1438u);
  for (const auto& q : kegg) {
    for (const auto& l : q.lists) {
      EXPECT_TRUE(IsSortedUnique(l));
      EXPECT_LT(l.back(), q.domain);
    }
  }
}

TEST(DatasetsTest, WebWorkloadShape) {
  auto web = MakeWebWorkload(100000, 50, 77);
  EXPECT_EQ(web.queries.size(), 50u);
  EXPECT_GE(web.lists.size(), 2u);
  for (const auto& q : web.queries) {
    EXPECT_GE(q.size(), 2u);
    EXPECT_LE(q.size(), 4u);
    for (size_t li : q) {
      ASSERT_LT(li, web.lists.size());
      EXPECT_TRUE(IsSortedUnique(web.lists[li]));
    }
  }
}

}  // namespace
}  // namespace intcomp
