#!/usr/bin/env python3
"""Line-coverage gate over gcov JSON output — no gcovr/lcov dependency.

Walks a coverage-instrumented build tree (cmake -DINTCOMP_COVERAGE=ON, then
ctest) for .gcda files, runs `gcov --json-format --stdout` on each, merges
the per-line execution counts (max across translation units, so a header
line counts as covered if ANY includer executed it), and reports line
coverage for the gated source prefixes.

    python3 tools/coverage_check.py --build-dir build-cov --fail-under 80

Exits non-zero when the combined coverage of the gated prefixes (default
src/core, src/service, src/storage, and src/planner) is below the threshold,
or when no coverage data was found at all (a silently-empty gate must fail,
not pass).
"""

import argparse
import collections
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def run_gcov(gcda, build_dir):
    """Yields gcov JSON documents (one per source file) for one .gcda."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", os.path.abspath(gcda)],
        cwd=build_dir,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        print(f"warning: gcov failed on {gcda}: {proc.stderr.strip()}",
              file=sys.stderr)
        return
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def normalize(path, repo_root, build_dir):
    """Repo-relative form of a gcov 'file' field, or None if external."""
    if not os.path.isabs(path):
        path = os.path.join(build_dir, path)
    path = os.path.realpath(path)
    root = os.path.realpath(repo_root)
    if not path.startswith(root + os.sep):
        return None
    return os.path.relpath(path, root)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-cov",
                        help="coverage-instrumented build tree")
    parser.add_argument("--repo-root",
                        default=os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))),
                        help="repository root the prefixes are relative to")
    parser.add_argument("--prefix", action="append", default=None,
                        help="gated source prefix (repeatable; default "
                             "src/core, src/service, src/storage, and "
                             "src/planner)")
    parser.add_argument("--fail-under", type=float, default=80.0,
                        help="minimum combined line coverage percent")
    parser.add_argument("--summary-out", default=None,
                        help="also write the summary table to this file")
    args = parser.parse_args()
    prefixes = args.prefix or ["src/core", "src/service", "src/storage",
                               "src/planner"]

    if not os.path.isdir(args.build_dir):
        print(f"error: build dir {args.build_dir} does not exist",
              file=sys.stderr)
        return 2

    # (file -> line -> max count). Max across TUs: headers appear in many.
    lines = collections.defaultdict(dict)
    gcda_count = 0
    for gcda in find_gcda(args.build_dir):
        gcda_count += 1
        for doc in run_gcov(gcda, args.build_dir):
            for f in doc.get("files", []):
                rel = normalize(f.get("file", ""), args.repo_root,
                                args.build_dir)
                if rel is None:
                    continue
                per_file = lines[rel]
                for ln in f.get("lines", []):
                    no = ln.get("line_number")
                    count = ln.get("count", 0)
                    if no is None:
                        continue
                    per_file[no] = max(per_file.get(no, 0), count)
    if gcda_count == 0:
        print(f"error: no .gcda files under {args.build_dir} — build with "
              "-DINTCOMP_COVERAGE=ON and run the tests first",
              file=sys.stderr)
        return 2

    def gated(rel):
        return any(rel == p or rel.startswith(p.rstrip("/") + "/")
                   for p in prefixes)

    rows = []
    total_lines = 0
    total_covered = 0
    for rel in sorted(lines):
        if not gated(rel):
            continue
        per_file = lines[rel]
        n = len(per_file)
        covered = sum(1 for c in per_file.values() if c > 0)
        total_lines += n
        total_covered += covered
        rows.append((rel, covered, n))

    out = []
    out.append(f"{'file':<44} {'covered':>8} {'lines':>6} {'pct':>7}")
    for rel, covered, n in rows:
        pct = 100.0 * covered / n if n else 100.0
        out.append(f"{rel:<44} {covered:>8} {n:>6} {pct:>6.1f}%")
    combined = 100.0 * total_covered / total_lines if total_lines else 0.0
    out.append(f"{'TOTAL (' + ', '.join(prefixes) + ')':<44} "
               f"{total_covered:>8} {total_lines:>6} {combined:>6.1f}%")
    summary = "\n".join(out)
    print(summary)
    if args.summary_out:
        with open(args.summary_out, "w") as fh:
            fh.write(summary + "\n")

    if total_lines == 0:
        print("error: no executable lines matched the gated prefixes",
              file=sys.stderr)
        return 2
    if combined < args.fail_under:
        print(f"FAIL: combined coverage {combined:.1f}% "
              f"< required {args.fail_under:.1f}%", file=sys.stderr)
        return 1
    print(f"OK: combined coverage {combined:.1f}% "
          f">= {args.fail_under:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
