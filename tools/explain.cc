// tools/explain — run one query plan against an index and print its EXPLAIN
// profile: per-plan-node attribution, the codec serving each list, the
// planner's per-pair intersection strategy with estimated vs. measured cost,
// the cache probe outcome, and the per-shard fan-out/stitch breakdown.
//
// Sources (pick one):
//   --index=FILE.ics       serve an index container file (storage/mapped_index)
//   --demo                 build an in-RAM demo index: five mixed-shape lists
//                          (dense / sparse / clustered) under the Planner
//                          codec, so per-list codec choice is genuinely mixed
//
// Common flags:
//   --plan=TEXT            plan in cache-key grammar (default "&(0,1)"):
//                          NUM | &(p,p,...) | |(p,p,...)
//   --json=PATH            also dump the explain tree as JSON (with timings)
//   --shards=S             demo shard count (default 2)
//   --threads=T            worker threads (default 4)
//   --cache=0|1            result cache on/off (default 1)
//   --repeat=N             run the query N times, print the last capture
//                          (default 1: a fresh evaluation with the full
//                          decision tree; use --repeat=3 to profile a cache
//                          hit instead — the admission gate stores on the
//                          second miss, so run 3 is served from cache)
//   --demo-out=FILE.ics    with --demo: write the demo index as a container
//                          file and serve THAT through the mapped path, so
//                          the profile shows exactly what a persisted index
//                          reports
//   --codec=NAME           demo index codec (default "Planner")
//   --domain=N             demo row-space size (default 1<<16)
//
// Examples:
//   explain --demo
//   explain --demo --demo-out=/tmp/demo.ics --plan='&(0,1,2)' --json=out.json
//   explain --index=/tmp/demo.ics --plan='|(&(0,2),1)' --cache=0

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/flags.h"
#include "core/registry.h"
#include "engine/thread_pool.h"
#include "obs/explain.h"
#include "service/plan_text.h"
#include "service/sharded_index.h"
#include "storage/index_writer.h"
#include "storage/mapped_index.h"
#include "workload/synthetic.h"

namespace {

using namespace intcomp;

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::exit(1);
}

// The demo workload spans both codec families on purpose: dense and
// clustered lists compress best as bitmaps, sparse uniform lists as
// delta-coded inverted lists, so a Planner-built index mixes codecs and the
// per-pair strategy audit has real decisions to show.
std::vector<std::vector<uint32_t>> DemoLists(uint64_t domain, uint64_t seed) {
  std::vector<std::vector<uint32_t>> lists;
  lists.push_back(GenerateUniform(domain / 3, domain, seed));  // dense
  lists.push_back(GenerateUniform(200, domain, seed + 1));     // sparse
  lists.push_back(GenerateMarkov(domain / 8, domain, 64.0, seed + 2));
  lists.push_back(GenerateZipf(2000, domain, 1.0, seed + 3));
  lists.push_back(GenerateUniform(domain / 4, domain, seed + 4));
  return lists;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  const std::string index_path = flags.GetString("index", "");
  const bool demo = flags.GetBool("demo", false);
  if ((index_path.empty()) == (!demo)) {
    std::fprintf(stderr,
                 "usage: explain (--index=FILE.ics | --demo) [--plan=TEXT] "
                 "[--json=PATH]\n       [--shards=S] [--threads=T] "
                 "[--cache=0|1] [--repeat=N] [--demo-out=FILE.ics]\n");
    return 2;
  }

  QueryPlan plan;
  const std::string plan_text = flags.GetString("plan", "&(0,1)");
  if (Status st = ParsePlanText(plan_text, &plan); !st.ok()) {
    Die("bad --plan: " + st.message());
  }

  // Assemble the snapshot to serve.
  std::unique_ptr<ShardedIndex> built;
  std::unique_ptr<storage::MappedIndex> mapped;
  const IndexSnapshot* snapshot = nullptr;
  if (demo) {
    const Codec* codec = FindCodec(flags.GetString("codec", "Planner"));
    if (codec == nullptr) Die("unknown --codec");
    const uint64_t domain =
        static_cast<uint64_t>(flags.GetInt("domain", 1 << 16));
    const size_t shards = static_cast<size_t>(flags.GetInt("shards", 2));
    const auto lists = DemoLists(domain, /*seed=*/42);
    built = std::make_unique<ShardedIndex>(
        ShardedIndex::Build(*codec, lists, domain, shards));
    const std::string demo_out = flags.GetString("demo-out", "");
    if (!demo_out.empty()) {
      if (Status st = storage::WriteIndexFile(demo_out, *built); !st.ok()) {
        Die("writing " + demo_out + ": " + st.message());
      }
      std::printf("# demo container written to %s\n", demo_out.c_str());
      auto opened = storage::MappedIndex::Open(demo_out);
      if (!opened.ok()) Die("reopening " + demo_out + ": " +
                            opened.status().message());
      mapped = std::move(opened.value());
      snapshot = mapped.get();
    } else {
      snapshot = built.get();
    }
  } else {
    auto opened = storage::MappedIndex::Open(index_path);
    if (!opened.ok()) Die("opening " + index_path + ": " +
                          opened.status().message());
    mapped = std::move(opened.value());
    snapshot = mapped.get();
  }

  ThreadPool pool(static_cast<size_t>(flags.GetInt("threads", 4)));
  IndexServiceOptions options;
  options.cache_enabled = flags.GetBool("cache", true);
  IndexService service(snapshot, &pool, options);

  const int repeat = static_cast<int>(flags.GetInt("repeat", 1));
  if (repeat < 1) Die("--repeat must be >= 1");
  obs::QueryExplain explain;
  std::vector<uint32_t> rows;
  for (int r = 0; r < repeat; ++r) {
    Status st = service.Query(plan, &rows, &explain);
    if (!st.ok()) Die("query failed: " + st.message());
  }

  std::printf("index:  %s (%zu lists, %zu shards, %zu bytes)\n",
              std::string(snapshot->CodecSignature()).c_str(),
              snapshot->NumLists(), snapshot->Router().NumShards(),
              snapshot->SizeInBytes());
  std::printf("plan:   %s\n", PlanToText(plan).c_str());
  std::printf("rows:   %zu\n\n", rows.size());
  std::fputs(explain.ToString().c_str(), stdout);

  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "wb");
    if (f == nullptr) Die("cannot open " + json_path);
    const std::string json = explain.ToJson(/*include_timings=*/true);
    if (std::fwrite(json.data(), 1, json.size(), f) != json.size() ||
        std::fputc('\n', f) == EOF || std::fclose(f) != 0) {
      Die("short write to " + json_path);
    }
    std::printf("\n# explain JSON written to %s\n", json_path.c_str());
  }
  return 0;
}
