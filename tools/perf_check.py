#!/usr/bin/env python3
"""Validate and diff the JSONL metrics artifacts the benches emit.

Subcommands:

  check FILE...
      Structural validation: every line is a JSON object, the first line is
      the meta record, op_latency records carry the full quantile set with
      sane orderings (p50 <= p90 <= p99 <= p999, mean <= p999), counters are
      non-negative. Exit 1 on any violation.

  median RUN... [-o OUT]
      Merge N runs of the same bench into one canonical artifact: per-key
      median of every latency field, counters and counts required identical
      across runs (the bench workloads are seeded and deterministic). This
      is how the checked-in baselines under tools/perf_baseline/ are built.
      Timing-valued counters (planner.cost.residual.*, accumulated ns) are
      the exception: they merge by median like latencies.

  diff BASELINE CURRENT... [--tail-tolerance F] [--calibrate] [--min-ns N]
                           [--attribute]
      Regression gate against a checked-in baseline. CURRENT may be several
      runs; their per-key medians are compared (median-of-3 is what the CI
      job uses — single-run p99 on a shared runner is scheduler noise).
      Gates, all exit-1:
        * the (codec, op) key sets must match exactly,
        * per-key sample counts must match exactly (a drift means the bench
          changed without the baseline being regenerated),
        * engine.* counters must match exactly (same determinism argument),
        * per-codec kernel-counter totals must match exactly; the
          scalar/simd split is reported but not gated (it legitimately
          differs across hosts with different SIMD support),
        * tail regression: a key fails when BOTH its p90 and p99 exceed the
          baseline by more than --tail-tolerance (default 15%). A genuine
          tail regression shifts the whole upper tail; a lone p99 spike is
          an OS artifact, so requiring two quantiles kills the flakes
          without letting real regressions through.
      With --calibrate, latencies are first normalized by the file-wide
      median p50, cancelling overall machine speed — required when baseline
      and current come from different machines (CI vs. the baseline host).
      Keys whose p99 delta is below --min-ns (default 2000 ns) are never
      flagged: at that scale histogram bucket width dominates.
      With --attribute, a per-stage (per-op) calibrated delta report names
      which stage moved — printed whenever a gate trips, and also on success
      so a near-miss can be eyeballed.

Record kinds: "meta", "op_latency", "counter", and "gauge" (point-in-time
occupancy such as cache bytes/entries/evictions — merged by median, reported,
never gated). An op name outside KNOWN_OPS is a hard error everywhere, with
the nearest known op suggested: new instrumentation sites must be registered
in KNOWN_OPS before the gates can reason about them.

The JSONL schema is produced by MetricsRegistry::ExportJsonl
(src/obs/metrics.cc); keep the two in sync.
"""

import argparse
import difflib
import json
import statistics
import sys

OP_LATENCY_KEYS = {"metric", "codec", "op", "count", "mean_ns", "p50_ns",
                   "p90_ns", "p99_ns", "p999_ns"}
QUANTILE_FIELDS = ("mean_ns", "p50_ns", "p90_ns", "p99_ns", "p999_ns")
KNOWN_OPS = {"intersect", "union", "decode", "deserialize_checked", "query",
             "service_query", "storage_open", "wal_append", "compaction",
             "planner_build", "planner_query", "net_request"}
KERNEL_FIELDS = {"scalar_merge", "simd_merge", "scalar_gallop", "simd_gallop",
                 "scalar_union", "simd_union", "block_probes"}


def unknown_op_error(path, lineno, op):
    """An op name outside KNOWN_OPS is always a hard error: it is either a
    typo (the nearest known op is suggested) or a new instrumentation site
    that must be registered here so the gates know about it."""
    hint = difflib.get_close_matches(op, sorted(KNOWN_OPS), n=1)
    suggestion = f"; did you mean {hint[0]!r}?" if hint else ""
    return SystemExit(
        f"{path}:{lineno}: unknown op {op!r}{suggestion} "
        "(new ops must be added to KNOWN_OPS in tools/perf_check.py)")


def load_jsonl(path):
    records = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{lineno}: invalid JSON: {e}")
            if not isinstance(obj, dict):
                raise SystemExit(f"{path}:{lineno}: not a JSON object")
            records.append((lineno, obj))
    if not records:
        raise SystemExit(f"{path}: empty metrics file")
    return records


class Metrics:
    """Parsed view of one JSONL artifact."""

    def __init__(self, path):
        self.path = path
        self.meta = None
        self.latency = {}   # (codec, op) -> record
        self.counters = {}  # name -> value
        self.gauges = {}    # name -> value (occupancy; reported, never gated)
        for lineno, obj in load_jsonl(path):
            metric = obj.get("metric")
            if metric == "meta":
                self.meta = obj
            elif metric == "op_latency":
                if obj["op"] not in KNOWN_OPS:
                    raise unknown_op_error(path, lineno, obj["op"])
                self.latency[(obj["codec"], obj["op"])] = obj
            elif metric == "counter":
                self.counters[obj["name"]] = obj["value"]
            elif metric == "gauge":
                self.gauges[obj["name"]] = obj["value"]
            else:
                raise SystemExit(
                    f"{path}:{lineno}: unknown metric kind {metric!r}")

    def kernel_totals(self):
        """codec -> summed kernel counter, plus the per-kernel split."""
        totals, split = {}, {}
        for name, value in self.counters.items():
            if not name.startswith("kernel."):
                continue
            parts = name.split(".")
            if len(parts) != 3 or parts[2] not in KERNEL_FIELDS:
                raise SystemExit(
                    f"{self.path}: malformed kernel counter {name!r}")
            totals[parts[1]] = totals.get(parts[1], 0) + value
            split[name] = value
        return totals, split

    def calibration_scale(self):
        """Median p50 across all op_latency records (machine-speed proxy)."""
        p50s = [r["p50_ns"] for r in self.latency.values()]
        if not p50s:
            return 1.0
        med = statistics.median(p50s)
        return float(med) if med > 0 else 1.0


def is_timing_counter(name):
    """Counters whose value is accumulated wall time, not a work count.

    The planner's cost-audit stream (planner.cost.residual.*) sums
    estimated and measured nanoseconds per strategy; like latency it
    varies run to run, so it merges by median and is never required
    identical. Everything else (engine.*, kernel.*) counts deterministic
    work and must match exactly.
    """
    return name.startswith("planner.cost.residual.")


def merge_runs(runs):
    """Per-key median of the latency fields across runs of one bench.

    Counts and (non-timing) counters must be identical across runs
    (seeded workloads); any mismatch is a hard error because it means
    the runs are not comparable.
    """
    first = runs[0]
    keys = set(first.latency)

    def work_counters(m):
        return {k: v for k, v in m.counters.items()
                if not is_timing_counter(k)}

    for m in runs[1:]:
        if set(m.latency) != keys:
            raise SystemExit(f"{m.path}: latency keys differ from "
                             f"{first.path} — runs are not comparable")
        if work_counters(m) != work_counters(first):
            drift = sorted(set(work_counters(m).items()) ^
                           set(work_counters(first).items()))
            raise SystemExit(f"{m.path}: counters differ from {first.path} "
                             f"({len(drift)} entries) — nondeterministic "
                             "bench or mixed workloads")
    merged = Metrics.__new__(Metrics)
    merged.path = "+".join(m.path for m in runs)
    merged.meta = first.meta
    merged.counters = work_counters(first)
    timing_names = sorted(
        {k for m in runs for k in m.counters if is_timing_counter(k)})
    for name in timing_names:
        values = [m.counters[name] for m in runs if name in m.counters]
        merged.counters[name] = int(statistics.median(values))
    # Gauges are point-in-time occupancy (cache bytes/entries/evictions):
    # they may legitimately differ across runs under different eviction
    # timing, so they merge by median and are never gated.
    merged.gauges = {}
    for name in sorted(set().union(*(m.gauges for m in runs))):
        values = [m.gauges[name] for m in runs if name in m.gauges]
        merged.gauges[name] = int(statistics.median(values))
    merged.latency = {}
    for key in keys:
        counts = {m.latency[key]["count"] for m in runs}
        if len(counts) != 1:
            raise SystemExit(f"{key[0]}/{key[1]}: sample counts differ "
                             f"across runs {sorted(counts)}")
        rec = dict(first.latency[key])
        for field in QUANTILE_FIELDS:
            values = [m.latency[key][field] for m in runs]
            med = statistics.median(values)
            rec[field] = med if field == "mean_ns" else int(med)
        merged.latency[key] = rec
    return merged


def cmd_check(args):
    failures = 0

    def fail(path, msg):
        nonlocal failures
        failures += 1
        print(f"FAIL {path}: {msg}", file=sys.stderr)

    for path in args.files:
        records = load_jsonl(path)
        first = records[0][1]
        if first.get("metric") != "meta":
            fail(path, "first line is not the meta record")
        else:
            if not first.get("bench"):
                fail(path, "meta record missing bench name")
            if "trace_sampling" not in first:
                fail(path, "meta record missing trace_sampling")
        n_latency = n_counter = 0
        for lineno, obj in records[1:]:
            metric = obj.get("metric")
            if metric == "meta":
                fail(path, f"line {lineno}: duplicate meta record")
            elif metric == "op_latency":
                n_latency += 1
                missing = OP_LATENCY_KEYS - obj.keys()
                if missing:
                    fail(path, f"line {lineno}: missing keys {sorted(missing)}")
                    continue
                if obj["op"] not in KNOWN_OPS:
                    raise unknown_op_error(path, lineno, obj["op"])
                if obj["count"] <= 0:
                    fail(path, f"line {lineno}: count {obj['count']} <= 0")
                q = [obj["p50_ns"], obj["p90_ns"], obj["p99_ns"],
                     obj["p999_ns"]]
                if any(v < 0 for v in q) or q != sorted(q):
                    fail(path, f"line {lineno}: quantiles not monotone: {q}")
                # The histogram reports bucket upper bounds, so the mean can
                # sit below p50 but never above the p999 bound.
                if not (0 <= obj["mean_ns"] <= obj["p999_ns"] or
                        obj["p999_ns"] == 0):
                    fail(path, f"line {lineno}: mean {obj['mean_ns']} above "
                               f"p999 {obj['p999_ns']}")
            elif metric == "counter":
                n_counter += 1
                if "name" not in obj or "value" not in obj:
                    fail(path, f"line {lineno}: malformed counter")
                elif obj["value"] < 0:
                    fail(path, f"line {lineno}: negative counter")
            elif metric == "gauge":
                if "name" not in obj or "value" not in obj:
                    fail(path, f"line {lineno}: malformed gauge")
                elif obj["value"] < 0:
                    fail(path, f"line {lineno}: negative gauge")
            else:
                fail(path, f"line {lineno}: unknown metric {metric!r}")
        if n_latency == 0:
            fail(path, "no op_latency records")
        print(f"ok {path}: {n_latency} op_latency, {n_counter} counters")
    return 1 if failures else 0


def cmd_median(args):
    merged = merge_runs([Metrics(p) for p in args.runs])
    out = sys.stdout if args.output == "-" else open(
        args.output, "w", encoding="utf-8")
    meta = dict(merged.meta or {"metric": "meta", "bench": "unknown",
                                "trace_sampling": 0})
    print(json.dumps(meta, separators=(",", ":")), file=out)
    for (codec, op) in sorted(merged.latency):
        print(json.dumps(merged.latency[(codec, op)],
                         separators=(",", ":")), file=out)
    for name in sorted(merged.counters):
        print(json.dumps({"metric": "counter", "name": name,
                          "value": merged.counters[name]},
                         separators=(",", ":")), file=out)
    for name in sorted(merged.gauges):
        print(json.dumps({"metric": "gauge", "name": name,
                          "value": merged.gauges[name]},
                         separators=(",", ":")), file=out)
    if out is not sys.stdout:
        out.close()
        print(f"wrote median of {len(args.runs)} runs to {args.output}")
    return 0


def attribute_report(base, cur, base_scale, cur_scale):
    """Name the stage that moved: per-op calibrated p50/p99 deltas, worst
    first. A tail-gate failure says *that* something regressed; this says
    *where* — which pipeline stage (op) and which codec carries the shift,
    so the offending change can be found without re-profiling."""
    stages = {}  # op -> list of (delta_p50, delta_p99, codec, b50, c50)
    for key in sorted(set(base.latency) & set(cur.latency)):
        b, c = base.latency[key], cur.latency[key]
        b50, c50 = b["p50_ns"] / base_scale, c["p50_ns"] / cur_scale
        b99, c99 = b["p99_ns"] / base_scale, c["p99_ns"] / cur_scale
        d50 = c50 / b50 - 1.0 if b50 > 0 else 0.0
        d99 = c99 / b99 - 1.0 if b99 > 0 else 0.0
        stages.setdefault(key[1], []).append((d50, d99, key[0], b50, c50))
    if not stages:
        return
    ranked = []
    for op, rows in stages.items():
        worst = max(rows, key=lambda r: max(r[0], r[1]))
        ranked.append((max(worst[0], worst[1]), op, worst))
    ranked.sort(reverse=True)
    print("attribution (per-stage calibrated deltas, worst codec shown):")
    for moved, op, (d50, d99, codec, b50, c50) in ranked:
        marker = "  <-- largest mover" if (moved, op) == (
            ranked[0][0], ranked[0][1]) and moved > 0 else ""
        print(f"  {op:<20} p50 {d50 * 100:+6.1f}%  p99 {d99 * 100:+6.1f}%  "
              f"({codec}: p50 {b50:.1f} -> {c50:.1f}){marker}")


def cmd_diff(args):
    base = Metrics(args.baseline)
    cur = merge_runs([Metrics(p) for p in args.current])
    failures = 0

    def fail(msg):
        nonlocal failures
        failures += 1
        print(f"FAIL: {msg}", file=sys.stderr)

    base_keys, cur_keys = set(base.latency), set(cur.latency)
    for k in sorted(base_keys - cur_keys):
        fail(f"{k[0]}/{k[1]}: present in baseline, missing in current")
    for k in sorted(cur_keys - base_keys):
        fail(f"{k[0]}/{k[1]}: new in current, not in baseline "
             "(regenerate tools/perf_baseline)")

    base_scale = base.calibration_scale() if args.calibrate else 1.0
    cur_scale = cur.calibration_scale() if args.calibrate else 1.0
    for key in sorted(base_keys & cur_keys):
        b, c = base.latency[key], cur.latency[key]
        if b["count"] != c["count"]:
            fail(f"{key[0]}/{key[1]}: sample count {c['count']} != baseline "
                 f"{b['count']} (bench workload changed?)")
            continue
        if abs(c["p99_ns"] - b["p99_ns"]) < args.min_ns:
            continue
        b90, c90 = b["p90_ns"] / base_scale, c["p90_ns"] / cur_scale
        b99, c99 = b["p99_ns"] / base_scale, c["p99_ns"] / cur_scale
        limit = 1.0 + args.tail_tolerance
        if b90 > 0 and b99 > 0 and c90 > b90 * limit and c99 > b99 * limit:
            unit = "x median-p50" if args.calibrate else "ns"
            fail(f"{key[0]}/{key[1]}: tail regression — p90 {c90:.1f} vs "
                 f"{b90:.1f} {unit} (+{(c90 / b90 - 1) * 100:.0f}%), p99 "
                 f"{c99:.1f} vs {b99:.1f} {unit} "
                 f"(+{(c99 / b99 - 1) * 100:.0f}%), tolerance "
                 f"{args.tail_tolerance * 100:.0f}%")

    for name in sorted(n for n in base.counters if n.startswith("engine.")):
        bv = base.counters[name]
        cv = cur.counters.get(name)
        if cv is None:
            fail(f"counter {name}: missing in current")
        elif cv != bv:
            fail(f"counter {name}: {cv} != baseline {bv}")

    base_totals, base_split = base.kernel_totals()
    cur_totals, cur_split = cur.kernel_totals()
    for codec in sorted(set(base_totals) | set(cur_totals)):
        bv, cv = base_totals.get(codec, 0), cur_totals.get(codec, 0)
        if bv != cv:
            fail(f"kernel total for {codec}: {cv} != baseline {bv}")
    if base_split != cur_split:
        drift = sorted(set(base_split.items()) ^ set(cur_split.items()))
        print(f"note: scalar/simd kernel split differs on {len(drift)} "
              "counters (not gated; host SIMD support may differ)")

    if args.attribute and failures:
        attribute_report(base, cur, base_scale, cur_scale)

    if failures == 0:
        n = len(base_keys & cur_keys)
        mode = "calibrated" if args.calibrate else "absolute"
        print(f"ok: {n} latency keys within {args.tail_tolerance * 100:.0f}% "
              f"({mode} p90+p99, median of {len(args.current)} runs), "
              "counters consistent")
        if args.attribute:
            attribute_report(base, cur, base_scale, cur_scale)
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_check = sub.add_parser("check", help="structural validation")
    p_check.add_argument("files", nargs="+")
    p_check.set_defaults(func=cmd_check)

    p_median = sub.add_parser("median", help="merge runs into a baseline")
    p_median.add_argument("runs", nargs="+")
    p_median.add_argument("-o", "--output", default="-")
    p_median.set_defaults(func=cmd_median)

    p_diff = sub.add_parser("diff", help="regression gate vs a baseline")
    p_diff.add_argument("baseline")
    p_diff.add_argument("current", nargs="+")
    p_diff.add_argument("--tail-tolerance", type=float, default=0.15,
                        help="max relative p90/p99 regression (default 0.15)")
    p_diff.add_argument("--calibrate", action="store_true",
                        help="normalize by the file-wide median p50 "
                             "(cross-machine comparisons)")
    p_diff.add_argument("--min-ns", type=int, default=2000,
                        help="ignore p99 deltas below this many ns")
    p_diff.add_argument("--attribute", action="store_true",
                        help="print a per-stage delta report naming the op "
                             "that moved (always on failure; also on success "
                             "for eyeballing)")
    p_diff.set_defaults(func=cmd_diff)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
