// tools/serve — stand up the TCP query server (DESIGN.md §5.14) on an index
// and serve plan-text queries until SIGINT/SIGTERM, then drain gracefully.
//
// Sources (pick one):
//   --index=FILE.ics       serve an index container file (storage/mapped_index)
//   --demo                 build an in-RAM demo index (same five mixed-shape
//                          lists as tools/explain)
//
// Server flags:
//   --host=ADDR            bind address (default 127.0.0.1)
//   --port=N               bind port (default 7333; 0 = kernel-picked,
//                          printed on startup)
//   --max-in-flight=N      admission budget; beyond it requests are shed
//                          with kOverloaded (default 64)
//   --max-connections=N    accept-time cap (default 256)
//   --deadline-ms=N        default per-request deadline when a request
//                          carries none (default 0 = unlimited)
//   --idle-timeout-ms=N    stalled-client reap bound (default 30000)
//   --wire-codec=NAME      codec for response row sets (default VB)
//   --threads=T            shard fan-out pool threads (default 4)
//   --cache=0|1            result cache on/off (default 1)
//
// Talk to it with bench/load_gen's wire client, or just:
//   build/tools/serve --demo &
//   build/bench/load_gen ...   # self-hosted; see README for the client API
//
// Example:
//   build/tools/explain --demo --demo-out=/tmp/demo.ics
//   build/tools/serve --index=/tmp/demo.ics --port=7333

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/flags.h"
#include "core/registry.h"
#include "engine/thread_pool.h"
#include "net/server.h"
#include "service/sharded_index.h"
#include "storage/mapped_index.h"
#include "workload/synthetic.h"

namespace {

using namespace intcomp;

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::exit(1);
}

// Same demo shape as tools/explain: spans both codec families so a
// Planner-built index genuinely mixes codecs.
std::vector<std::vector<uint32_t>> DemoLists(uint64_t domain, uint64_t seed) {
  std::vector<std::vector<uint32_t>> lists;
  lists.push_back(GenerateUniform(domain / 3, domain, seed));  // dense
  lists.push_back(GenerateUniform(200, domain, seed + 1));     // sparse
  lists.push_back(GenerateMarkov(domain / 8, domain, 64.0, seed + 2));
  lists.push_back(GenerateZipf(2000, domain, 1.0, seed + 3));
  lists.push_back(GenerateUniform(domain / 4, domain, seed + 4));
  return lists;
}

// sig_atomic_t write from the handler, polled by the main thread; the
// handler itself must not touch the server (Stop() takes locks).
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  const std::string index_path = flags.GetString("index", "");
  const bool demo = flags.GetBool("demo", false);
  if ((index_path.empty()) == (!demo)) {
    std::fprintf(stderr,
                 "usage: serve (--index=FILE.ics | --demo) [--host=ADDR] "
                 "[--port=N]\n       [--max-in-flight=N] [--max-connections=N] "
                 "[--deadline-ms=N]\n       [--wire-codec=NAME] [--threads=T] "
                 "[--cache=0|1]\n");
    return 2;
  }

  std::unique_ptr<ShardedIndex> built;
  std::unique_ptr<storage::MappedIndex> mapped;
  const IndexSnapshot* snapshot = nullptr;
  if (demo) {
    const Codec* codec = FindCodec(flags.GetString("codec", "Planner"));
    if (codec == nullptr) Die("unknown --codec");
    const uint64_t domain =
        static_cast<uint64_t>(flags.GetInt("domain", 1 << 16));
    const size_t shards = static_cast<size_t>(flags.GetInt("shards", 2));
    built = std::make_unique<ShardedIndex>(
        ShardedIndex::Build(*codec, DemoLists(domain, /*seed=*/42), domain,
                            shards));
    snapshot = built.get();
  } else {
    auto opened = storage::MappedIndex::Open(index_path);
    if (!opened.ok()) {
      Die("opening " + index_path + ": " + opened.status().message());
    }
    mapped = std::move(opened.value());
    snapshot = mapped.get();
  }

  ThreadPool pool(static_cast<size_t>(flags.GetInt("threads", 4)));
  IndexServiceOptions service_options;
  service_options.cache_enabled = flags.GetBool("cache", true);
  IndexService service(snapshot, &pool, service_options);

  net::ServerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.GetInt("port", 7333));
  options.max_in_flight =
      static_cast<size_t>(flags.GetInt("max-in-flight", 64));
  options.max_connections =
      static_cast<size_t>(flags.GetInt("max-connections", 256));
  options.default_deadline_ns =
      static_cast<uint64_t>(flags.GetInt("deadline-ms", 0)) * 1000000ull;
  options.idle_timeout_ms =
      static_cast<uint64_t>(flags.GetInt("idle-timeout-ms", 30000));
  options.wire_codec = flags.GetString("wire-codec", "VB");

  net::QueryServer server(&service, options);
  if (Status st = server.Start(); !st.ok()) Die("start: " + st.message());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::printf("# serving %s (%zu lists, %zu shards, %zu bytes) on %s:%u\n",
              std::string(snapshot->CodecSignature()).c_str(),
              snapshot->NumLists(), snapshot->Router().NumShards(),
              snapshot->SizeInBytes(), options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::printf("# wire=%s in-flight budget=%zu conns<=%zu; Ctrl-C to drain\n",
              options.wire_codec.c_str(), options.max_in_flight,
              options.max_connections);
  std::fflush(stdout);

  while (g_stop == 0) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::printf("# draining...\n");
  server.Stop();
  const auto stats = server.GetStats();
  std::printf(
      "# served: accepted=%llu requests=%llu ok=%llu shed=%llu deadline=%llu "
      "rejected=%llu malformed=%llu idle_closed=%llu refused=%llu\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.ok),
      static_cast<unsigned long long>(stats.overloaded),
      static_cast<unsigned long long>(stats.deadline),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.malformed),
      static_cast<unsigned long long>(stats.idle_closed),
      static_cast<unsigned long long>(stats.refused));
  return 0;
}
